//! Device non-idealities: GNR width variation and oxide charge impurities.
//!
//! The paper (§4) identifies two dominant mechanisms:
//!
//! * **Width variation** — the band gap is inversely proportional to the
//!   ribbon width, so a ±1-index slip (3.7 Å per step of 3 in N) changes
//!   I_on/I_off by orders of magnitude. Modelled exactly: a
//!   [`GnrVariant`] simply selects a different index N for the affected
//!   ribbon(s).
//! * **Charge impurities** — a fixed ±q/±2q charge in the gate oxide,
//!   0.4 nm above the ribbon and near the source contact where it distorts
//!   the Schottky barrier most. Modelled as a real screened-Coulomb
//!   profile: a 3D Poisson solve with all electrodes grounded.

use crate::config::DeviceConfig;
use crate::error::DeviceError;

/// A variant ribbon width for one or more GNRs in a FET channel array.
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub struct GnrVariant {
    /// The GNR index of the affected ribbon(s).
    pub n: usize,
}

impl GnrVariant {
    /// The paper's study set: N ∈ {9, 12, 15, 18} (all-semiconducting `3p`
    /// family, 1.1 nm upward in steps of 3.7 Å).
    pub const PAPER_SET: [GnrVariant; 4] = [
        GnrVariant { n: 9 },
        GnrVariant { n: 12 },
        GnrVariant { n: 15 },
        GnrVariant { n: 18 },
    ];
}

/// A fixed charge impurity in the gate oxide.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChargeImpurity {
    /// Charge in units of q (the paper studies −2, −1, +1, +2).
    pub charge_q: f64,
    /// Distance from the source face along the channel \[nm\]. The paper
    /// places impurities near the source to maximize the Schottky-barrier
    /// distortion.
    pub x_from_source_nm: f64,
    /// Height above the GNR plane \[nm\] (paper: 0.4).
    pub height_nm: f64,
}

impl ChargeImpurity {
    /// The paper's standard placement: `charge_q` charges, 2 nm into the
    /// channel from the source (just past the Schottky-barrier transition,
    /// where Fig. 5(a) shows the distorted band peak), 0.4 nm above the
    /// ribbon.
    pub fn near_source(charge_q: f64) -> Self {
        ChargeImpurity {
            charge_q,
            x_from_source_nm: 2.0,
            height_nm: 0.4,
        }
    }

    /// Computes the impurity's potential footprint on the ribbon: one value
    /// per channel grid column \[V\], from a 3D Poisson solve with every
    /// electrode grounded. By linearity this profile superposes onto any
    /// bias condition.
    ///
    /// # Errors
    ///
    /// Propagates Poisson failures.
    pub fn ribbon_profile(&self, cfg: &DeviceConfig) -> Result<Vec<f64>, DeviceError> {
        let mut problem = cfg.build_poisson(0.0, 0.0, 0.0)?;
        let h = cfg.grid_h_nm;
        let (_, ny, _) = cfg.grid_dims();
        let (ch0, _) = cfg.channel_x_range();
        let x = (ch0 as f64) * h + self.x_from_source_nm;
        let y = ny as f64 * h / 2.0;
        let z = (cfg.gnr_plane_k() as f64 + 0.5) * h + self.height_nm;
        problem.add_point_charge(x, y, z, self.charge_q);
        let sol = problem.solve(None, &gnr_num::budget::ExecLimits::none())?;
        Ok(cfg.sample_along_channel(&sol))
    }
}

/// Edge roughness of the ribbon: each edge atom is independently removed
/// (converted to a vacancy) with the given probability.
///
/// The paper points to edge roughness (its ref. [17], Yoon & Guo, APL 91,
/// 073103) as the next defect mechanism "readily explored by extending the
/// bottom-up simulation framework" — this type is that extension. Vacancies
/// are modelled by a large on-site energy that decouples the site while
/// preserving the layered structure the RGF solver needs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeRoughness {
    /// Per-edge-atom vacancy probability (the paper's cited study sweeps
    /// this in the few-percent range).
    pub probability: f64,
    /// RNG seed for reproducible disorder realizations.
    pub seed: u64,
}

/// On-site energy used to decouple vacancy sites (eV); far outside the
/// pz band so the site carries no spectral weight in the transport window.
pub const VACANCY_ENERGY_EV: f64 = 1.0e3;

impl EdgeRoughness {
    /// Creates a roughness descriptor.
    pub fn new(probability: f64, seed: u64) -> Self {
        EdgeRoughness { probability, seed }
    }

    /// The edge-atom indices (cell-major) turned into vacancies for this
    /// realization on a `cells`-long ribbon of index `gnr`.
    pub fn vacancy_sites(&self, gnr: gnr_lattice::AGnr, cells: usize) -> Vec<usize> {
        let lattice = gnr.lattice(cells);
        let max_row = gnr.index() - 1;
        // xorshift64*: tiny deterministic generator, no extra dependency.
        let mut state = self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        lattice
            .atoms()
            .iter()
            .enumerate()
            .filter(|(_, a)| a.row == 0 || a.row == max_row)
            .filter(|_| (next() >> 11) as f64 / ((1u64 << 53) as f64) < self.probability)
            .map(|(i, _)| i)
            .collect()
    }

    /// Applies this disorder realization to a device Hamiltonian.
    pub fn apply(&self, h: &mut gnr_lattice::DeviceHamiltonian, cells: usize) {
        for site in self.vacancy_sites(h.gnr(), cells) {
            h.add_site_energy(site, VACANCY_ENERGY_EV);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_is_3p_family() {
        for v in GnrVariant::PAPER_SET {
            assert_eq!(v.n % 3, 0);
        }
    }

    #[test]
    fn positive_impurity_raises_ribbon_potential_locally() {
        let cfg = DeviceConfig::test_small(12).unwrap();
        let imp = ChargeImpurity::near_source(2.0);
        let prof = imp.ribbon_profile(&cfg).unwrap();
        // Peak near the source end, decaying into the channel.
        let peak_idx = prof
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(peak_idx < prof.len() / 3, "peak at {peak_idx}");
        assert!(prof[peak_idx] > 0.05, "peak {}", prof[peak_idx]);
        // Gate screening kills it within a few nm (pitch > oxide thickness
        // argument from the paper §4).
        let far = prof[prof.len() - 1].abs();
        assert!(far < 0.1 * prof[peak_idx], "far {far}");
    }

    #[test]
    fn impurity_profile_scales_linearly_with_charge() {
        let cfg = DeviceConfig::test_small(9).unwrap();
        let p1 = ChargeImpurity::near_source(1.0)
            .ribbon_profile(&cfg)
            .unwrap();
        let p2 = ChargeImpurity::near_source(-2.0)
            .ribbon_profile(&cfg)
            .unwrap();
        for (a, b) in p1.iter().zip(&p2) {
            assert!((b + 2.0 * a).abs() < 1e-6 + 1e-6 * a.abs(), "{a} vs {b}");
        }
    }

    #[test]
    fn negative_impurity_raises_electron_barrier() {
        use crate::sbfet::SbfetModel;
        let cfg = DeviceConfig::test_small(12).unwrap();
        let ideal = SbfetModel::new(&cfg).unwrap();
        let neg = SbfetModel::with_impurities(&cfg, &[ChargeImpurity::near_source(-2.0)]).unwrap();
        // Paper Fig. 5: a -2q impurity raises the source barrier and cuts
        // the electron on-current severely (factor ~6 in the paper).
        let i_ideal = ideal.drain_current(0.5, 0.5).unwrap();
        let i_neg = neg.drain_current(0.5, 0.5).unwrap();
        assert!(
            i_neg < 0.65 * i_ideal,
            "on-current {i_ideal:.3e} -> {i_neg:.3e} should drop"
        );
    }

    #[test]
    fn edge_roughness_is_reproducible_and_scales() {
        let gnr = gnr_lattice::AGnr::new(9).unwrap();
        let a = EdgeRoughness::new(0.1, 42).vacancy_sites(gnr, 10);
        let b = EdgeRoughness::new(0.1, 42).vacancy_sites(gnr, 10);
        assert_eq!(a, b, "same seed, same realization");
        let c = EdgeRoughness::new(0.1, 43).vacancy_sites(gnr, 10);
        assert_ne!(a, c, "different seed, different realization");
        // Expected count: 4 edge atoms/cell x 10 cells x 10% = ~4.
        assert!(!a.is_empty() && a.len() < 15, "{} vacancies", a.len());
        let dense = EdgeRoughness::new(0.5, 42).vacancy_sites(gnr, 10);
        assert!(dense.len() > 2 * a.len());
        // None at zero probability.
        assert!(EdgeRoughness::new(0.0, 42)
            .vacancy_sites(gnr, 10)
            .is_empty());
    }

    #[test]
    fn edge_roughness_suppresses_transmission() {
        use gnr_lattice::DeviceHamiltonian;
        use gnr_negf::{Lead, RgfSolver};
        // Paper ref [17]: edge roughness localizes carriers and degrades
        // conduction; transmission through a rough ribbon must fall well
        // below the ideal ribbon's, and fall further with more roughness.
        let gnr = gnr_lattice::AGnr::new(9).unwrap();
        let cells = 12;
        let bands = gnr.band_structure(96).unwrap();
        let e_probe = bands.conduction_edge() + 0.15;
        let t_of = |p: f64| {
            let mut h = DeviceHamiltonian::flat_band(gnr, cells).unwrap();
            EdgeRoughness::new(p, 7).apply(&mut h, cells);
            RgfSolver::new(&h, Lead::gnr_contact(), Lead::gnr_contact())
                .transmission(e_probe)
                .unwrap()
        };
        let t0 = t_of(0.0);
        let t5 = t_of(0.05);
        let t20 = t_of(0.20);
        assert!((t0 - 1.0).abs() < 0.05, "ideal T = {t0}");
        assert!(t5 < 0.9 * t0, "5% roughness: {t5} vs ideal {t0}");
        assert!(t20 < t5, "20% roughness {t20} must be below 5% {t5}");
    }

    #[test]
    fn positive_impurity_smaller_effect_on_ntype() {
        use crate::sbfet::SbfetModel;
        // Paper Fig. 5(b): the +2q device deviates less from ideal than the
        // -2q device in the n-type branch.
        let cfg = DeviceConfig::test_small(12).unwrap();
        let ideal = SbfetModel::new(&cfg).unwrap();
        let pos = SbfetModel::with_impurities(&cfg, &[ChargeImpurity::near_source(2.0)]).unwrap();
        let neg = SbfetModel::with_impurities(&cfg, &[ChargeImpurity::near_source(-2.0)]).unwrap();
        let i0 = ideal.drain_current(0.6, 0.5).unwrap();
        let ip = pos.drain_current(0.6, 0.5).unwrap();
        let in_ = neg.drain_current(0.6, 0.5).unwrap();
        let dev_pos = (ip / i0).ln().abs();
        let dev_neg = (in_ / i0).ln().abs();
        assert!(
            dev_neg > dev_pos,
            "asymmetry: -2q dev {dev_neg:.3} vs +2q dev {dev_pos:.3}"
        );
    }
}
