//! Error type for the device simulator.

use gnr_lattice::LatticeError;
use gnr_negf::NegfError;
use gnr_num::NumError;
use gnr_poisson::PoissonError;
use std::error::Error;
use std::fmt;

/// Errors produced while configuring or solving GNRFET devices.
#[derive(Debug)]
pub enum DeviceError {
    /// Lattice/band-structure failure.
    Lattice(LatticeError),
    /// Quantum-transport failure.
    Negf(NegfError),
    /// Electrostatics failure.
    Poisson(PoissonError),
    /// Numerics failure.
    Num(NumError),
    /// Self-consistent loop did not converge.
    ScfDiverged {
        /// Iterations performed.
        iterations: usize,
        /// Final potential update (V).
        residual_v: f64,
    },
    /// Invalid device configuration.
    Config {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::Lattice(e) => write!(f, "lattice: {e}"),
            DeviceError::Negf(e) => write!(f, "negf: {e}"),
            DeviceError::Poisson(e) => write!(f, "poisson: {e}"),
            DeviceError::Num(e) => write!(f, "numerics: {e}"),
            DeviceError::ScfDiverged {
                iterations,
                residual_v,
            } => write!(
                f,
                "self-consistent loop did not converge after {iterations} iterations (residual {residual_v:.3e} V)"
            ),
            DeviceError::Config { detail } => write!(f, "invalid device configuration: {detail}"),
        }
    }
}

impl Error for DeviceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DeviceError::Lattice(e) => Some(e),
            DeviceError::Negf(e) => Some(e),
            DeviceError::Poisson(e) => Some(e),
            DeviceError::Num(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LatticeError> for DeviceError {
    fn from(e: LatticeError) -> Self {
        DeviceError::Lattice(e)
    }
}

impl From<NegfError> for DeviceError {
    fn from(e: NegfError) -> Self {
        DeviceError::Negf(e)
    }
}

impl From<PoissonError> for DeviceError {
    fn from(e: PoissonError) -> Self {
        DeviceError::Poisson(e)
    }
}

impl From<NumError> for DeviceError {
    fn from(e: NumError) -> Self {
        DeviceError::Num(e)
    }
}

impl DeviceError {
    /// Builds a [`DeviceError::Config`] from a detail string.
    pub fn config(detail: impl Into<String>) -> Self {
        DeviceError::Config {
            detail: detail.into(),
        }
    }

    /// True when this error wraps a budget stop
    /// ([`NumError::BudgetExhausted`] / [`NumError::Cancelled`]) at any
    /// nesting level: budget stops must propagate unchanged instead of
    /// triggering rescue ladders.
    pub fn is_budget_stop(&self) -> bool {
        match self {
            DeviceError::Num(e) => e.is_budget_stop(),
            DeviceError::Poisson(PoissonError::Solve(e)) => e.is_budget_stop(),
            DeviceError::Negf(NegfError::Linear(e)) => e.is_budget_stop(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DeviceError::config("bad grid");
        assert!(e.to_string().contains("bad grid"));
        assert!(e.source().is_none());
        let e = DeviceError::from(NumError::invalid("x"));
        assert!(e.source().is_some());
    }
}
