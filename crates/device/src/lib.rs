//! `gnr-device` — the GNRFET device simulator.
//!
//! Reproduces the device level of the paper (§2 and §4): a 15 nm
//! armchair-edge GNR channel in a double-gate stack with 1.5 nm SiO₂
//! insulators and metal Schottky-barrier source/drain contacts pinned at
//! mid-gap (`Φ_Bn = Φ_Bp = E_g/2`), operated as an ambipolar SBFET.
//!
//! Two solution paths expose the same physics at different cost:
//!
//! * [`scf`] — the rigorous path: atomistic NEGF (`gnr-negf`) coupled
//!   self-consistently to the 3D Poisson solver (`gnr-poisson`), exactly as
//!   the paper describes. Cubic-in-width, linear-in-length cost; used at
//!   full fidelity in benches and validated at reduced fidelity in tests.
//! * [`sbfet`] — a semi-analytic ballistic surrogate: the exact 3D *Laplace*
//!   response of the same geometry (superposed electrode Green's functions
//!   from `gnr-poisson`), WKB tunneling through the resulting Schottky
//!   barriers using the GNR 2-band complex dispersion, Landauer current,
//!   and a local quantum-capacitance charge correction. Milliseconds per
//!   bias point; used to populate the dense `I(V_G, V_D)`/`Q(V_G, V_D)`
//!   lookup tables the circuit level consumes (see DESIGN.md §2 for the
//!   substitution rationale).
//!
//! Device non-idealities from §4 — GNR width variation via the index N, and
//! oxide charge impurities via real screened-Coulomb profiles solved on the
//! 3D grid — enter both paths through [`variation`].
//!
//! # Example
//!
//! ```
//! use gnr_device::{DeviceConfig, SbfetModel};
//!
//! # fn main() -> Result<(), gnr_device::DeviceError> {
//! let cfg = DeviceConfig::paper_nominal(12)?; // N = 12 GNRFET
//! let model = SbfetModel::new(&cfg)?;
//! let on = model.drain_current(0.75, 0.5)?;  // n-branch on-state
//! let off = model.drain_current(0.25, 0.5)?; // minimum-leakage point
//! assert!(on > 20.0 * off, "ambipolar SBFET on/off: {on:.3e}/{off:.3e}");
//! # Ok(())
//! # }
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod config;
pub mod error;
pub mod negf_table;
pub mod sbfet;
pub mod scf;
pub mod store;
pub mod table;
pub mod variation;
pub mod vt;

pub use config::DeviceConfig;
pub use error::DeviceError;
pub use gnr_negf::mode_space::ModeSpaceOptions;
pub use negf_table::{ballistic_negf_table, NegfTableOptions};
pub use sbfet::SbfetModel;
pub use scf::{ScfOptions, ScfResult, ScfSolver};
pub use store::{TableKey, TableStore};
pub use table::{DeviceTable, Polarity, TableGrid};
pub use variation::{ChargeImpurity, GnrVariant};
pub use vt::extract_vt;
