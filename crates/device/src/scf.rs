//! Self-consistent NEGF ⇄ 3D-Poisson device solver — the paper's rigorous
//! device path (§2).
//!
//! The loop: the 3D Poisson equation is solved for the electrostatic
//! potential with the current NEGF charge deposited on the grid; the
//! potential sampled at the atom sites shifts the tight-binding on-site
//! energies; NEGF recomputes charge and current; linear (damped) mixing
//! closes the loop. Metal Schottky contacts are wide-band self-energies on
//! the terminal layers, with mid-gap pinning emerging naturally from the
//! contact boundary condition on the potential.

use crate::config::DeviceConfig;
use crate::error::DeviceError;
use gnr_lattice::DeviceHamiltonian;
use gnr_negf::transport::{
    integrate_transport, integrate_transport_frozen, integrate_transport_with, EnergyGrid,
    RefineOptions, TransportOptions,
};
use gnr_negf::{Lead, RgfSolver};
use gnr_num::par::{ExecCtx, RecoveryPolicy};
use gnr_num::recover::{AttemptReport, EscalationLadder, SolveReport};
use gnr_poisson::PoissonSolution;

/// Convergence and fidelity knobs of the SCF loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScfOptions {
    /// Maximum SCF iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the maximum potential update \[V\].
    pub tolerance_v: f64,
    /// Linear mixing factor in `(0, 1]` (fraction of the new potential).
    pub mixing: f64,
    /// Number of energy grid points for the transport integrals.
    pub energy_points: usize,
    /// Half-width of the energy window beyond the bias window \[eV\]
    /// (must cover the filled valence/conduction tails).
    pub energy_margin_ev: f64,
    /// Adaptive energy-grid refinement for the transport integrals: when
    /// set, `energy_points` describes the *coarse base* grid and intervals
    /// where `T(E)` jumps are bisected per [`RefineOptions`]. `None` keeps
    /// the legacy uniform grid.
    pub refine: Option<RefineOptions>,
}

impl Default for ScfOptions {
    fn default() -> Self {
        ScfOptions {
            max_iterations: 40,
            tolerance_v: 2e-3,
            mixing: 0.35,
            energy_points: 120,
            energy_margin_ev: 0.9,
            refine: None,
        }
    }
}

impl ScfOptions {
    /// Cheap settings for unit tests (coarse but convergent).
    pub fn fast() -> Self {
        ScfOptions {
            max_iterations: 80,
            tolerance_v: 8e-3,
            mixing: 0.3,
            energy_points: 60,
            energy_margin_ev: 0.7,
            refine: None,
        }
    }

    /// `fast()` on an adaptive grid: a coarser base grid with band-edge
    /// refinement on the first SCF iteration, frozen thereafter (see
    /// `solve_inner`) — same physics, fewer RGF solves. The tighter `tol_t`
    /// and iteration headroom give the frozen grid margin at biases whose
    /// T(E) features move as the potential converges.
    pub fn fast_adaptive() -> Self {
        ScfOptions {
            max_iterations: 120,
            energy_points: 30,
            refine: Some(RefineOptions {
                tol_t: 0.01,
                ..RefineOptions::default()
            }),
            ..ScfOptions::fast()
        }
    }

    /// Sets the maximum number of SCF iterations.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Sets the convergence threshold on the potential update \[V\].
    pub fn with_tolerance_v(mut self, tol: f64) -> Self {
        self.tolerance_v = tol;
        self
    }

    /// Sets the linear mixing factor in `(0, 1]`.
    pub fn with_mixing(mut self, mixing: f64) -> Self {
        self.mixing = mixing;
        self
    }

    /// Sets the number of energy grid points (the coarse base grid when
    /// `refine` is set).
    pub fn with_energy_points(mut self, n: usize) -> Self {
        self.energy_points = n;
        self
    }

    /// Sets the energy-window margin beyond the bias window \[eV\].
    pub fn with_energy_margin_ev(mut self, margin: f64) -> Self {
        self.energy_margin_ev = margin;
        self
    }

    /// Sets (or clears) adaptive energy-grid refinement.
    pub fn with_refine(mut self, refine: Option<RefineOptions>) -> Self {
        self.refine = refine;
        self
    }
}

/// Converged output of one bias point.
#[derive(Clone, Debug)]
pub struct ScfResult {
    /// Drain current \[A\].
    pub current_a: f64,
    /// Net channel charge \[C\].
    pub charge_c: f64,
    /// Mid-gap potential energy per layer \[eV\] (conduction band profile
    /// is this plus `E_g/2`).
    pub layer_potential_ev: Vec<f64>,
    /// SCF iterations used.
    pub iterations: usize,
    /// Final self-consistency residual \[V\].
    pub residual_v: f64,
    /// Converged potential energy at every atom site \[eV\] — the warm-start
    /// seed for neighbouring bias points in a sweep.
    pub atom_potential_ev: Vec<f64>,
}

/// Self-consistent device solver bound to one [`DeviceConfig`].
#[derive(Clone, Debug)]
pub struct ScfSolver {
    cfg: DeviceConfig,
    opts: ScfOptions,
}

impl ScfSolver {
    /// Creates a solver with the given options.
    pub fn new(cfg: &DeviceConfig, opts: ScfOptions) -> Self {
        ScfSolver {
            cfg: cfg.clone(),
            opts,
        }
    }

    /// Runs the SCF loop at bias `(v_g, v_d)` with the source grounded,
    /// under the execution context's policy and thread pool (the inner
    /// energy integration parallelizes over `ctx`).
    ///
    /// With [`RecoveryPolicy::Strict`] only the nominal attempt runs and
    /// any divergence propagates as an error — byte-for-byte the historic
    /// plain `solve`. With [`RecoveryPolicy::Ladder`] the nominal attempt
    /// (still bit-identical when it converges) is followed on divergence by
    /// a mixing backoff continuing from the last potential, a fresh restart
    /// at quarter mixing, and a restart on a twice-finer energy grid; if no
    /// rung converges, the lowest-residual best-effort result is returned
    /// flagged [`Degraded`](gnr_num::recover::Quality::Degraded) in the
    /// report instead of an `Err`.
    ///
    /// # Errors
    ///
    /// Under `Strict`, returns [`DeviceError::ScfDiverged`] when the
    /// potential update fails to fall below tolerance. Under `Ladder`,
    /// returns the first attempt's error only when every rung fails without
    /// producing even a best-effort iterate (e.g. configuration or upstream
    /// solver failures).
    pub fn solve(
        &self,
        ctx: &ExecCtx,
        v_g: f64,
        v_d: f64,
    ) -> Result<(ScfResult, SolveReport), DeviceError> {
        self.solve_seeded(ctx, v_g, v_d, None)
    }

    /// [`Self::solve`] with an explicit warm start: when `seed_u` matches
    /// the atom count, it replaces the Laplace initial guess for the
    /// atom-site potential of the nominal attempt (recovery rungs keep
    /// their own restart semantics). Seeding from a converged neighbouring
    /// bias point typically removes most SCF iterations of a sweep; with
    /// `seed_u = None` this is byte-for-byte `solve`.
    ///
    /// # Errors
    ///
    /// As [`Self::solve`].
    pub fn solve_seeded(
        &self,
        ctx: &ExecCtx,
        v_g: f64,
        v_d: f64,
        seed_u: Option<&[f64]>,
    ) -> Result<(ScfResult, SolveReport), DeviceError> {
        ctx.counter_inc("scf.solves");
        match ctx.recovery() {
            RecoveryPolicy::Strict => {
                let mut best = None;
                let r = self.solve_inner(ctx, v_g, v_d, &self.opts, seed_u, &mut best)?;
                let report = SolveReport::single("nominal", r.iterations, r.residual_v);
                Ok((r, report))
            }
            RecoveryPolicy::Ladder => self.solve_laddered(ctx, v_g, v_d, seed_u),
        }
    }

    /// The escalation-ladder solve behind [`RecoveryPolicy::Ladder`].
    fn solve_laddered(
        &self,
        ctx: &ExecCtx,
        v_g: f64,
        v_d: f64,
        seed_u: Option<&[f64]>,
    ) -> Result<(ScfResult, SolveReport), DeviceError> {
        struct ScfPolicy {
            opts: ScfOptions,
            reuse_potential: bool,
            /// Nominal rung only: start from the caller's warm-start seed.
            use_seed: bool,
        }
        let base = self.opts;
        let ladder = EscalationLadder::new()
            .rung(
                "nominal",
                ScfPolicy {
                    opts: base,
                    reuse_potential: false,
                    use_seed: true,
                },
            )
            .rung(
                "mixing-backoff",
                ScfPolicy {
                    opts: ScfOptions {
                        mixing: base.mixing * 0.5,
                        ..base
                    },
                    reuse_potential: true,
                    use_seed: false,
                },
            )
            .rung(
                "restart-low-mixing",
                ScfPolicy {
                    opts: ScfOptions {
                        mixing: base.mixing * 0.25,
                        ..base
                    },
                    reuse_potential: false,
                    use_seed: false,
                },
            )
            .rung(
                "fine-energy-grid",
                ScfPolicy {
                    opts: ScfOptions {
                        mixing: base.mixing * 0.25,
                        energy_points: base.energy_points * 2,
                        ..base
                    },
                    reuse_potential: false,
                    use_seed: false,
                },
            );

        let mut carry_u: Option<Vec<f64>> = None;
        let mut first_err: Option<DeviceError> = None;
        // A budget stop must not burn further rescue rungs: record it and
        // short-circuit the remaining ladder.
        let mut stop_err: Option<DeviceError> = None;
        let outcome = ladder.run(|_, policy: &ScfPolicy| {
            if stop_err.is_some() {
                return AttemptReport::failed("skipped: budget stop");
            }
            if gnr_num::fault::should_fail("scf") {
                return AttemptReport::failed("injected fault: scf attempt suppressed");
            }
            let init = if policy.reuse_potential {
                carry_u.as_deref()
            } else if policy.use_seed {
                seed_u
            } else {
                None
            };
            let mut best = None;
            match self.solve_inner(ctx, v_g, v_d, &policy.opts, init, &mut best) {
                Ok(r) => {
                    let (it, res) = (r.iterations, r.residual_v);
                    AttemptReport::converged(r, it, res)
                }
                Err(err) => {
                    let msg = err.to_string();
                    let budget_stop = matches!(&err, DeviceError::Num(e) if e.is_budget_stop());
                    if budget_stop {
                        stop_err = Some(err);
                    } else if first_err.is_none() {
                        first_err = Some(err);
                    }
                    match best {
                        Some((result, u_atoms)) => {
                            carry_u = Some(u_atoms);
                            let (it, res) = (result.iterations, result.residual_v);
                            AttemptReport::degraded(result, it, res)
                        }
                        None => AttemptReport::failed(msg),
                    }
                }
            }
        });
        if outcome.report.attempts.len() > 1 {
            ctx.counter_add(
                "scf.ladder.escalations",
                (outcome.report.attempts.len() - 1) as u64,
            );
        }
        if outcome.report.degraded() {
            ctx.counter_inc("scf.degraded");
        }
        match outcome.value {
            Some(result) => Ok((result, outcome.report)),
            None => Err(stop_err.or(first_err).unwrap_or(DeviceError::ScfDiverged {
                iterations: 0,
                residual_v: f64::NAN,
            })),
        }
    }

    /// The SCF loop itself. `opts` overrides the solver's options for this
    /// attempt; `init_u` (when its length matches the atom count) replaces
    /// the Laplace initial guess for the atom-site potential; on
    /// divergence, `best_out` receives the last iterate as a best-effort
    /// [`ScfResult`] plus its atom potential for ladder continuation.
    fn solve_inner(
        &self,
        ctx: &ExecCtx,
        v_g: f64,
        v_d: f64,
        opts: &ScfOptions,
        init_u: Option<&[f64]>,
        best_out: &mut Option<(ScfResult, Vec<f64>)>,
    ) -> Result<ScfResult, DeviceError> {
        let cfg = &self.cfg;
        let gnr = cfg.gnr;
        let cells = cfg.channel_cells;
        let m = gnr.atoms_per_cell();
        let lattice = gnr.lattice(cells);
        let atoms = lattice.atom_count();

        // Atom positions on the Poisson grid (nm): the channel starts at the
        // source face.
        let h = cfg.grid_h_nm;
        let (ch0, _) = cfg.channel_x_range();
        let (_, ny, _) = cfg.grid_dims();
        let x0 = ch0 as f64 * h;
        let y0 = (ny as f64 * h - gnr.width_nm()) / 2.0;
        let z_gnr = (cfg.gnr_plane_k() as f64 + 0.5) * h;
        let positions: Vec<(f64, f64, f64)> = lattice
            .atoms()
            .iter()
            .map(|a| (x0 + a.x * 1e9, y0 + a.y * 1e9, z_gnr))
            .collect();

        let mu_s = 0.0f64;
        let mu_d = -v_d;
        let pad = opts.energy_margin_ev;
        let grid = EnergyGrid::new(
            mu_s.min(mu_d) - pad,
            mu_s.max(mu_d) + pad,
            opts.energy_points,
        )?;

        // Initial guess: zero charge -> Laplace potential (still solved when
        // a ladder rung hands in a previous iterate, to seed the Poisson
        // warm start).
        let problem = cfg.build_poisson(0.0, v_d, v_g)?;
        let mut poisson_sol: PoissonSolution = problem.solve(None, ctx.limits())?;
        let mut u_atoms: Vec<f64> = match init_u {
            Some(prev) if prev.len() == atoms => prev.to_vec(),
            _ => positions
                .iter()
                .map(|&(x, y, z)| -poisson_sol.potential_at(x, y, z))
                .collect(),
        };

        let mut last = ScfIter {
            current_a: 0.0,
            charge: vec![0.0; atoms],
            residual: f64::INFINITY,
            iterations: 0,
        };
        // Adaptive damping: back off when the update grows (oscillation),
        // recover slowly towards the configured mixing when it shrinks.
        let mut alpha = opts.mixing;
        let mut prev_residual = f64::INFINITY;
        // Adaptive-grid SCF refines on the FIRST iteration only and then
        // freezes that energy set: re-refining each iteration makes the
        // charge a discontinuous function of the potential (the refinement
        // set flips as T(E) features move), which turns the fixed point
        // into a limit cycle.
        let mut frozen_energies: Option<Vec<f64>> = None;

        for it in 0..opts.max_iterations {
            ctx.check_budget("scf.iteration")?;
            // NEGF with the current potential.
            let ham = DeviceHamiltonian::new(gnr, cells, &u_atoms)?;
            let solver = RgfSolver::new(
                &ham,
                Lead::metal_with_gamma(cfg.contact_gamma_ev),
                Lead::metal_with_gamma(cfg.contact_gamma_ev),
            );
            let transport = match opts.refine {
                Some(refine) => match &frozen_energies {
                    Some(energies) => integrate_transport_frozen(
                        ctx,
                        &solver,
                        energies,
                        &TransportOptions::legacy(),
                        mu_s,
                        mu_d,
                        cfg.temperature_k,
                        &u_atoms,
                    )?,
                    None => {
                        let topts = TransportOptions::legacy().with_refine(refine);
                        let r = integrate_transport_with(
                            ctx,
                            &solver,
                            &grid,
                            &topts,
                            mu_s,
                            mu_d,
                            cfg.temperature_k,
                            &u_atoms,
                        )?;
                        frozen_energies = Some(r.transmission.iter().map(|&(e, _)| e).collect());
                        r
                    }
                },
                None => integrate_transport(
                    ctx,
                    &solver,
                    &grid,
                    mu_s,
                    mu_d,
                    cfg.temperature_k,
                    &u_atoms,
                )?,
            };

            // Poisson with the NEGF charge deposited per atom.
            let mut problem = cfg.build_poisson(0.0, v_d, v_g)?;
            for (i, &(x, y, z)) in positions.iter().enumerate() {
                problem.add_point_charge(x, y, z, transport.charge.net[i]);
            }
            let new_sol = problem.solve(Some(poisson_sol.raw()), ctx.limits())?;
            let new_u: Vec<f64> = positions
                .iter()
                .map(|&(x, y, z)| -new_sol.potential_at(x, y, z))
                .collect();
            let residual = new_u
                .iter()
                .zip(&u_atoms)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            // `f64::max` silently drops NaN, so probe the update directly: a
            // non-finite potential means the fixed point is lost for good.
            if !residual.is_finite() || new_u.iter().any(|u| !u.is_finite()) {
                return Err(gnr_num::NumError::non_finite(format!(
                    "scf potential update at iteration {}",
                    it + 1
                ))
                .into());
            }

            // Damped linear mixing of the potential with adaptive step.
            if residual > prev_residual {
                alpha = (alpha * 0.6).max(0.01);
            } else {
                alpha = (alpha * 1.03).min(opts.mixing);
            }
            prev_residual = residual;
            ctx.counter_inc("scf.iterations");
            ctx.telemetry()
                .histogram_record("scf.residual_v", SCF_RESIDUAL_BOUNDS, residual);
            for (u, nu) in u_atoms.iter_mut().zip(&new_u) {
                *u = (1.0 - alpha) * *u + alpha * nu;
            }
            poisson_sol = new_sol;
            last = ScfIter {
                current_a: transport.current_a,
                charge: transport.charge.net.clone(),
                residual,
                iterations: it + 1,
            };
            if residual < opts.tolerance_v {
                let layer_potential_ev = (0..cells)
                    .map(|l| u_atoms[l * m..(l + 1) * m].iter().sum::<f64>() / m as f64)
                    .collect();
                let charge_c = last.charge.iter().sum::<f64>() * gnr_num::consts::Q_E;
                return Ok(ScfResult {
                    current_a: last.current_a,
                    charge_c,
                    layer_potential_ev,
                    iterations: last.iterations,
                    residual_v: residual,
                    atom_potential_ev: u_atoms,
                });
            }
        }
        // Hand the last iterate to the caller as best-effort state (only on
        // the divergence path, so the converged path does no extra work).
        if last.iterations > 0 {
            let layer_potential_ev = (0..cells)
                .map(|l| u_atoms[l * m..(l + 1) * m].iter().sum::<f64>() / m as f64)
                .collect();
            let charge_c = last.charge.iter().sum::<f64>() * gnr_num::consts::Q_E;
            *best_out = Some((
                ScfResult {
                    current_a: last.current_a,
                    charge_c,
                    layer_potential_ev,
                    iterations: last.iterations,
                    residual_v: last.residual,
                    atom_potential_ev: u_atoms.clone(),
                },
                u_atoms,
            ));
        }
        Err(DeviceError::ScfDiverged {
            iterations: last.iterations,
            residual_v: last.residual,
        })
    }
}

/// Bin edges (volts) for the `scf.residual_v` trajectory histogram: log
/// decades spanning tight convergence to outright divergence.
const SCF_RESIDUAL_BOUNDS: &[f64] = &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0];

struct ScfIter {
    current_a: f64,
    charge: Vec<f64>,
    residual: f64,
    iterations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> DeviceConfig {
        let mut cfg = DeviceConfig::test_small(9).unwrap();
        cfg.channel_cells = 12;
        cfg
    }

    fn strict() -> ExecCtx {
        ExecCtx::strict()
    }

    #[test]
    fn scf_converges_at_off_state() {
        let solver = ScfSolver::new(&tiny_cfg(), ScfOptions::fast());
        let (r, report) = solver.solve(&strict(), 0.0, 0.1).unwrap();
        assert!(r.residual_v < ScfOptions::fast().tolerance_v);
        assert!(r.iterations >= 1);
        assert!(r.current_a.is_finite());
        assert!(report.nominal(), "strict solve reports one nominal attempt");
    }

    #[test]
    fn scf_gate_modulates_barrier() {
        let solver = ScfSolver::new(&tiny_cfg(), ScfOptions::fast());
        let (low, _) = solver.solve(&strict(), 0.0, 0.1).unwrap();
        let (high, _) = solver.solve(&strict(), 0.5, 0.1).unwrap();
        // Higher gate voltage pulls the mid-channel potential down.
        let mid = low.layer_potential_ev.len() / 2;
        assert!(
            high.layer_potential_ev[mid] < low.layer_potential_ev[mid] - 0.2,
            "gate control: {} -> {}",
            low.layer_potential_ev[mid],
            high.layer_potential_ev[mid]
        );
    }

    #[test]
    fn scf_on_current_exceeds_off_current() {
        // A slightly longer channel than tiny_cfg: at ~5 nm direct
        // source-drain tunneling erodes the on/off contrast.
        let mut cfg = tiny_cfg();
        cfg.channel_cells = 18;
        let solver = ScfSolver::new(&cfg, ScfOptions::fast());
        let vd = 0.3;
        let (off, _) = solver.solve(&strict(), vd / 2.0, vd).unwrap();
        let (on, _) = solver.solve(&strict(), 0.6, vd).unwrap();
        assert!(
            on.current_a > 2.0 * off.current_a.abs().max(1e-12),
            "on {:.3e} off {:.3e}",
            on.current_a,
            off.current_a
        );
    }

    #[test]
    fn recovery_nominal_path_is_bit_identical() {
        let solver = ScfSolver::new(&tiny_cfg(), ScfOptions::fast());
        let (plain, _) = solver.solve(&strict(), 0.0, 0.1).unwrap();
        let (laddered, report) = solver.solve(&ExecCtx::serial(), 0.0, 0.1).unwrap();
        assert!(report.nominal(), "fault-free: first rung must win");
        assert_eq!(report.policy_used.as_deref(), Some("nominal"));
        assert_eq!(plain.current_a.to_bits(), laddered.current_a.to_bits());
        assert_eq!(plain.charge_c.to_bits(), laddered.charge_c.to_bits());
        assert_eq!(plain.layer_potential_ev, laddered.layer_potential_ev);
        assert_eq!(plain.iterations, laddered.iterations);
    }

    #[test]
    fn parallel_solve_bit_identical_to_serial() {
        let solver = ScfSolver::new(&tiny_cfg(), ScfOptions::fast());
        let (serial, _) = solver.solve(&strict(), 0.3, 0.2).unwrap();
        let par_ctx = ExecCtx::with_threads(4).with_recovery(RecoveryPolicy::Strict);
        let (par, _) = solver.solve(&par_ctx, 0.3, 0.2).unwrap();
        assert_eq!(serial.current_a.to_bits(), par.current_a.to_bits());
        assert_eq!(serial.charge_c.to_bits(), par.charge_c.to_bits());
        assert_eq!(serial.layer_potential_ev, par.layer_potential_ev);
        assert_eq!(serial.iterations, par.iterations);
    }

    #[test]
    fn solve_records_telemetry_on_isolated_sink() {
        let solver = ScfSolver::new(&tiny_cfg(), ScfOptions::fast());
        let ctx = ExecCtx::serial().with_telemetry(gnr_num::Telemetry::isolated());
        let (r, _) = solver.solve(&ctx, 0.0, 0.1).unwrap();
        let snap = ctx.telemetry().snapshot();
        assert_eq!(snap.counter("scf.solves"), Some(1));
        assert_eq!(snap.counter("scf.iterations"), Some(r.iterations as u64));
        assert_eq!(
            snap.counter("negf.transport.integrations"),
            Some(r.iterations as u64)
        );
        match snap.get("scf.residual_v") {
            Some(gnr_num::MetricValue::Histogram(h)) => {
                assert_eq!(h.count, r.iterations as u64);
            }
            other => panic!("expected residual histogram, got {other:?}"),
        }
    }

    #[test]
    fn ladder_rescues_iteration_starved_solve() {
        // One SCF iteration cannot converge; the nominal rung diverges but
        // later rungs (same budget, lower mixing) cannot either — the
        // ladder must still hand back a flagged best-effort result.
        let opts = ScfOptions {
            max_iterations: 1,
            ..ScfOptions::fast()
        };
        let solver = ScfSolver::new(&tiny_cfg(), opts);
        assert!(solver.solve(&strict(), 0.0, 0.1).is_err());
        let (result, report) = solver.solve(&ExecCtx::serial(), 0.0, 0.1).unwrap();
        assert!(report.degraded());
        assert_eq!(report.attempts.len(), 4, "every rung attempted");
        assert!(result.residual_v.is_finite());
        assert_eq!(result.iterations, 1);
    }

    #[test]
    fn warm_start_converges_faster_to_same_point() {
        let solver = ScfSolver::new(&tiny_cfg(), ScfOptions::fast());
        let (cold, _) = solver.solve(&strict(), 0.3, 0.1).unwrap();
        // Neighbouring bias point, seeded with the converged potential.
        let (warm, _) = solver
            .solve_seeded(&strict(), 0.3, 0.15, Some(&cold.atom_potential_ev))
            .unwrap();
        let (cold2, _) = solver.solve(&strict(), 0.3, 0.15).unwrap();
        assert!(
            warm.iterations <= cold2.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold2.iterations
        );
        // Both converge to the same fixed point within tolerance.
        let tol = 5.0 * ScfOptions::fast().tolerance_v;
        for (a, b) in warm
            .layer_potential_ev
            .iter()
            .zip(&cold2.layer_potential_ev)
        {
            assert!((a - b).abs() < tol, "{a} vs {b}");
        }
    }

    #[test]
    fn unseeded_solve_seeded_is_solve() {
        let solver = ScfSolver::new(&tiny_cfg(), ScfOptions::fast());
        let (a, _) = solver.solve(&strict(), 0.2, 0.1).unwrap();
        let (b, _) = solver.solve_seeded(&strict(), 0.2, 0.1, None).unwrap();
        assert_eq!(a.current_a.to_bits(), b.current_a.to_bits());
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.atom_potential_ev, b.atom_potential_ev);
    }

    #[test]
    fn adaptive_energy_grid_matches_uniform_physics() {
        let uniform = ScfSolver::new(&tiny_cfg(), ScfOptions::fast());
        let adaptive = ScfSolver::new(&tiny_cfg(), ScfOptions::fast_adaptive());
        let (u, _) = uniform.solve(&strict(), 0.4, 0.2).unwrap();
        let (a, _) = adaptive.solve(&strict(), 0.4, 0.2).unwrap();
        let scale = u.current_a.abs().max(1e-12);
        assert!(
            (u.current_a - a.current_a).abs() / scale < 0.15,
            "uniform {:.3e} adaptive {:.3e}",
            u.current_a,
            a.current_a
        );
        let mid = u.layer_potential_ev.len() / 2;
        assert!((u.layer_potential_ev[mid] - a.layer_potential_ev[mid]).abs() < 0.05);
    }

    #[test]
    fn scf_accumulates_electrons_at_high_gate() {
        let solver = ScfSolver::new(&tiny_cfg(), ScfOptions::fast());
        let (off, _) = solver.solve(&strict(), 0.05, 0.1).unwrap();
        let (on, _) = solver.solve(&strict(), 0.6, 0.1).unwrap();
        // Electron accumulation makes the net channel charge more negative.
        assert!(
            on.charge_c < off.charge_c,
            "{} vs {}",
            on.charge_c,
            off.charge_c
        );
    }
}
