//! Content-addressed device-table cache: canonical keys and an
//! atomic-write JSON store.
//!
//! # Canonical keys
//!
//! A [`TableKey`] accumulates every input that can change a table —
//! geometry ([`DeviceConfig`] field by field), bias grid, polarity,
//! ribbon count, solver options — into one FNV-64 hash
//! ([`gnr_num::checkpoint::KeyHasher`]). Fields are written in a fixed
//! order with type-tagged, length-prefixed encodings, so the key is a
//! *stability contract*: the same request always maps to the same hash,
//! and perturbing any single field (a grid bound, an energy step, the
//! oxide thickness) maps to a different one. Keys are versioned by the
//! `kind` string passed to [`TableKey::new`]; bump it when the table
//! physics or serialization changes.
//!
//! # The store
//!
//! A [`TableStore`] is a two-level cache of *serialized* tables:
//!
//! * an in-memory map `key → canonical JSON`, shared across every
//!   [`clone`](std::sync::Arc) of the handle — this is what lets one run
//!   reuse a table across stages even with the disk layer disabled;
//! * an optional on-disk layer (`tbl-<key>.json` under the store
//!   directory), written with the same temp-file + sync + rename
//!   discipline as [`gnr_num::checkpoint::save`], so a crash mid-write
//!   never leaves a torn entry.
//!
//! The store caches the *JSON string*, not the in-memory table: a cache
//! hit re-parses the stored document, and because the JSON layer prints
//! shortest-round-trip numbers, a hit is byte-identical to what a cold
//! build would have serialized. Corrupt entries (unreadable,
//! unparseable, or an armed [`FAULT_SITE`] injection) are evicted —
//! deleted and rebuilt from scratch — never served.
//!
//! Telemetry: `table_cache.hits`, `table_cache.misses`,
//! `table_cache.evictions`, `table_cache.writes`.

use crate::config::DeviceConfig;
use crate::error::DeviceError;
use crate::negf_table::NegfTableOptions;
use crate::table::{DeviceTable, Polarity, TableGrid};
use gnr_negf::transport::RefineOptions;
use gnr_num::checkpoint::KeyHasher;
use gnr_num::{fault, telemetry};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Fault site probed on every disk read; arming it makes a present cache
/// entry read as corrupt (evicted, rebuilt clean).
pub const FAULT_SITE: &str = "table_cache.corrupt";

/// Canonical cache-key builder for device tables.
///
/// All `with_*`-style methods consume and return the builder so a key
/// reads as one chained expression ending in [`finish`](TableKey::finish).
#[derive(Clone, Copy, Debug)]
pub struct TableKey {
    h: KeyHasher,
}

impl TableKey {
    /// Starts a key for the given `kind` (a versioned namespace such as
    /// `"library-ntype/v3"`; distinct kinds never collide by
    /// construction).
    pub fn new(kind: &str) -> Self {
        let mut h = KeyHasher::new();
        h.write_str("gnr-table-key/v1");
        h.write_str(kind);
        TableKey { h }
    }

    /// Mixes in the full device geometry, field by field.
    pub fn device(mut self, cfg: &DeviceConfig) -> Self {
        self.h.write_str("device");
        self.h.write_u64(cfg.gnr.index() as u64);
        self.h.write_u64(cfg.channel_cells as u64);
        self.h.write_f64(cfg.t_ox_nm);
        self.h.write_f64(cfg.contact_nm);
        self.h.write_f64(cfg.grid_h_nm);
        self.h.write_f64(cfg.temperature_k);
        self.h.write_f64(cfg.contact_gamma_ev);
        self.h.write_f64(cfg.gate_offset_v);
        self
    }

    /// Mixes in the bias grid.
    pub fn grid(mut self, grid: &TableGrid) -> Self {
        self.h.write_str("grid");
        self.h.write_f64(grid.vgs.0);
        self.h.write_f64(grid.vgs.1);
        self.h.write_f64(grid.vds.0);
        self.h.write_f64(grid.vds.1);
        self.h.write_u64(grid.points as u64);
        self
    }

    /// Mixes in the table polarity.
    pub fn polarity(mut self, p: Polarity) -> Self {
        self.h.write_str("polarity");
        self.h.write_u64(match p {
            Polarity::NType => 0,
            Polarity::PType => 1,
        });
        self
    }

    /// Mixes in the parallel ribbon count.
    pub fn ribbons(mut self, n: usize) -> Self {
        self.h.write_str("ribbons");
        self.h.write_u64(n as u64);
        self
    }

    /// Mixes in the NEGF sweep options (the solver path: energy grid,
    /// refinement, surface-GF cache, mode-space reduction).
    ///
    /// The mode-space fields are appended only when the path is enabled,
    /// so keys minted before mode-space existed are unchanged.
    pub fn negf(mut self, opts: &NegfTableOptions) -> Self {
        self.h.write_str("negf");
        self.h.write_f64(opts.energy_step_ev);
        self.h.write_f64(opts.energy_pad_ev);
        self.h.write_u64(u64::from(opts.use_cache));
        self = self.refine(opts.refine.as_ref());
        if let Some(ms) = &opts.mode_space {
            self.h.write_str("mode-space");
            self.h.write_f64(ms.window_margin_ev);
            self.h.write_f64(ms.coupling_tol_ev);
            self.h.write_u64(ms.theta_samples as u64);
            self.h.write_f64(ms.rank_tol);
        }
        self
    }

    fn refine(mut self, refine: Option<&RefineOptions>) -> Self {
        match refine {
            None => self.h.write_u64(0),
            Some(r) => {
                self.h.write_u64(1);
                self.h.write_f64(r.tol_t);
                self.h.write_f64(r.tol_dos_rel);
                self.h.write_u64(r.max_depth as u64);
                self.h.write_u64(r.max_points as u64);
            }
        }
        self
    }

    /// Mixes in a named string field (extension point for callers with
    /// inputs the typed methods do not cover).
    pub fn field_str(mut self, name: &str, v: &str) -> Self {
        self.h.write_str(name);
        self.h.write_str(v);
        self
    }

    /// Mixes in a named `f64` field (by bit pattern).
    pub fn field_f64(mut self, name: &str, v: f64) -> Self {
        self.h.write_str(name);
        self.h.write_f64(v);
        self
    }

    /// Mixes in a named `u64` field.
    pub fn field_u64(mut self, name: &str, v: u64) -> Self {
        self.h.write_str(name);
        self.h.write_u64(v);
        self
    }

    /// The accumulated 64-bit content address.
    pub fn finish(&self) -> u64 {
        self.h.finish()
    }
}

/// Two-level (memory + optional disk) content-addressed store of
/// serialized [`DeviceTable`]s. See the [module docs](self).
#[derive(Debug)]
pub struct TableStore {
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<u64, String>>,
}

impl TableStore {
    /// A memory-only store: intra-run reuse, nothing persisted.
    pub fn in_memory() -> Self {
        TableStore {
            dir: None,
            mem: Mutex::new(HashMap::new()),
        }
    }

    /// A store that also persists entries as JSON under `dir` (created on
    /// first write).
    pub fn on_disk(dir: impl Into<PathBuf>) -> Self {
        TableStore {
            dir: Some(dir.into()),
            mem: Mutex::new(HashMap::new()),
        }
    }

    /// The on-disk directory, if the disk layer is enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn entry_path(&self, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("tbl-{key:016x}.json")))
    }

    /// The cached canonical JSON for `key`, if present in memory or on
    /// disk (the byte-identity witness used by tests; does not count a
    /// hit or probe the fault site).
    pub fn cached_json(&self, key: u64) -> Option<String> {
        if let Some(json) = self.lock_mem().get(&key) {
            return Some(json.clone());
        }
        let path = self.entry_path(key)?;
        std::fs::read_to_string(path).ok()
    }

    fn lock_mem(&self) -> std::sync::MutexGuard<'_, HashMap<u64, String>> {
        self.mem.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Returns the table for `key`, building (and caching) it on a miss.
    ///
    /// Hits re-parse the stored canonical JSON, so a warm table
    /// serializes byte-identically to the cold build that populated the
    /// entry. Corrupt disk entries are evicted and rebuilt.
    ///
    /// # Errors
    ///
    /// Propagates `build` failures and serialization errors.
    pub fn get_or_build<F>(&self, key: u64, build: F) -> Result<DeviceTable, DeviceError>
    where
        F: FnOnce() -> Result<DeviceTable, DeviceError>,
    {
        if let Some(json) = self.lock_mem().get(&key).cloned() {
            telemetry::counter_inc("table_cache.hits");
            return DeviceTable::from_json(&json);
        }
        if let Some(table) = self.load_disk(key) {
            telemetry::counter_inc("table_cache.hits");
            return Ok(table);
        }
        telemetry::counter_inc("table_cache.misses");
        let table = build()?;
        let json = table.to_json()?;
        self.persist(key, &json);
        self.lock_mem().insert(key, json);
        Ok(table)
    }

    /// Disk lookup: parses the entry, promoting it to the memory layer on
    /// success. Anything unexpected — unreadable file, bad JSON, or an
    /// armed [`FAULT_SITE`] injection — evicts the entry (deletes the
    /// file) and reports a miss, so a corrupt entry is never served.
    fn load_disk(&self, key: u64) -> Option<DeviceTable> {
        let path = self.entry_path(key)?;
        if !path.exists() {
            return None;
        }
        let evict = || {
            let _ = std::fs::remove_file(&path);
            telemetry::counter_inc("table_cache.evictions");
        };
        if fault::should_fail(FAULT_SITE) {
            evict();
            return None;
        }
        let json = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(_) => {
                evict();
                return None;
            }
        };
        match DeviceTable::from_json(&json) {
            Ok(table) => {
                self.lock_mem().insert(key, json);
                Some(table)
            }
            Err(_) => {
                evict();
                None
            }
        }
    }

    /// Atomic disk write (temp + sync + rename); a failure only costs the
    /// persistence of this entry, never the build result.
    fn persist(&self, key: u64, json: &str) {
        let Some(path) = self.entry_path(key) else {
            return;
        };
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let tmp = path.with_extension("tmp");
        let written = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(json.as_bytes())?;
            f.sync_all()?;
            std::fs::rename(&tmp, &path)
        })();
        if written.is_ok() {
            telemetry::counter_inc("table_cache.writes");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbfet::SbfetModel;
    use gnr_num::par::ExecCtx;

    fn tiny_table() -> DeviceTable {
        let cfg = DeviceConfig::test_small(9).expect("valid config");
        let model = SbfetModel::new(&cfg).expect("builds");
        DeviceTable::from_model(
            &ExecCtx::serial(),
            &model,
            Polarity::NType,
            TableGrid {
                vgs: (0.0, 0.4),
                vds: (0.0, 0.4),
                points: 3,
            },
            1,
        )
        .expect("samples")
    }

    #[test]
    fn keys_separate_every_field() {
        let cfg = DeviceConfig::test_small(9).expect("valid config");
        let grid = TableGrid::coarse();
        let base = TableKey::new("t")
            .device(&cfg)
            .grid(&grid)
            .polarity(Polarity::NType)
            .ribbons(4)
            .finish();
        let mut thick = cfg.clone();
        thick.t_ox_nm += 0.1;
        let mut wide = grid;
        wide.vgs.1 += 0.05;
        let perturbed = [
            TableKey::new("u")
                .device(&cfg)
                .grid(&grid)
                .polarity(Polarity::NType)
                .ribbons(4)
                .finish(),
            TableKey::new("t")
                .device(&thick)
                .grid(&grid)
                .polarity(Polarity::NType)
                .ribbons(4)
                .finish(),
            TableKey::new("t")
                .device(&cfg)
                .grid(&wide)
                .polarity(Polarity::NType)
                .ribbons(4)
                .finish(),
            TableKey::new("t")
                .device(&cfg)
                .grid(&grid)
                .polarity(Polarity::PType)
                .ribbons(4)
                .finish(),
            TableKey::new("t")
                .device(&cfg)
                .grid(&grid)
                .polarity(Polarity::NType)
                .ribbons(1)
                .finish(),
        ];
        for (i, k) in perturbed.iter().enumerate() {
            assert_ne!(base, *k, "perturbation {i} must change the key");
        }
        assert_ne!(
            TableKey::new("t")
                .negf(&NegfTableOptions::legacy())
                .finish(),
            TableKey::new("t")
                .negf(&NegfTableOptions::accelerated())
                .finish(),
            "solver path is part of the address"
        );
        assert_ne!(
            TableKey::new("t")
                .negf(&NegfTableOptions::accelerated())
                .finish(),
            TableKey::new("t")
                .negf(&NegfTableOptions::mode_space())
                .finish(),
            "mode-space reduction is part of the address"
        );
    }

    #[test]
    fn memory_hit_is_byte_identical() {
        let store = TableStore::in_memory();
        let cold = store.get_or_build(1, || Ok(tiny_table())).expect("cold");
        let warm = store
            .get_or_build(1, || panic!("hit must not rebuild"))
            .expect("warm");
        assert_eq!(
            cold.to_json().expect("cold json"),
            warm.to_json().expect("warm json"),
            "byte-identical round trip"
        );
    }

    #[test]
    fn disk_hit_survives_a_fresh_handle() {
        let dir = std::env::temp_dir().join(format!("gnr-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cold_json = {
            let store = TableStore::on_disk(&dir);
            store
                .get_or_build(7, || Ok(tiny_table()))
                .expect("cold")
                .to_json()
                .expect("json")
        };
        let store = TableStore::on_disk(&dir);
        let warm = store
            .get_or_build(7, || panic!("disk hit must not rebuild"))
            .expect("warm");
        assert_eq!(cold_json, warm.to_json().expect("json"));
        assert_eq!(store.cached_json(7).as_deref(), Some(cold_json.as_str()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unparseable_disk_entry_is_evicted_and_rebuilt() {
        let dir = std::env::temp_dir().join(format!("gnr-store-evict-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TableStore::on_disk(&dir);
        let path = store.entry_path(3).expect("disk layer on");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(&path, "{ not json").expect("plant corruption");
        let rebuilt = store.get_or_build(3, || Ok(tiny_table()));
        assert!(rebuilt.is_ok(), "corrupt entry must rebuild cleanly");
        let reread = std::fs::read_to_string(&path).expect("rewritten");
        assert!(DeviceTable::from_json(&reread).is_ok(), "entry is clean");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
