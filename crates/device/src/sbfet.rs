//! Semi-analytic ballistic Schottky-barrier GNRFET model.
//!
//! The fast device path (DESIGN.md §2, substitution 1): the same geometry,
//! bands, and contact physics as the full NEGF⇄Poisson solver, evaluated
//! with three approximations that together cost microseconds per bias point:
//!
//! 1. **Electrostatics** — the exact 3D *Laplace* response of the gate
//!    stack (three unit-voltage solves from `gnr-poisson`, superposed by
//!    linearity), plus a local quantum-capacitance correction for the
//!    channel charge instead of a full Poisson⇄NEGF iteration.
//! 2. **Transport** — WKB tunneling through the resulting Schottky-barrier
//!    profile using the GNR 2-band complex dispersion
//!    `κ(E) = √(E_n² − (E−U)²)/ħv_F` per subband, with Landauer
//!    integration over the bias window. Above-barrier transmission is 1 per
//!    open subband, reproducing the ballistic limit.
//! 3. **Charge** — 1D subband DOS filled with the average source/drain
//!    occupancy, the standard ballistic approximation.
//!
//! The model reproduces every qualitative device feature the paper's
//! evaluation relies on: ambipolar I-V with the leakage minimum at
//! `V_G ≈ V_D/2`, exponential V_D dependence of the minimum leakage,
//! band-gap (width) controlled I_on/I_off, and the asymmetric response to
//! oxide charge impurities (which enter as real screened-Coulomb profiles
//! solved on the same 3D grid).

use crate::config::{DeviceConfig, ResponseProfiles};
use crate::error::DeviceError;
use crate::variation::ChargeImpurity;
use gnr_num::consts::{EPS_0, EPS_R_SIO2, G_QUANTUM, Q_E, T_HOPPING};
use gnr_num::fermi::fermi;

/// `ħ·v_F` of graphene in eV·nm (`3 t a_cc / 2`).
pub const HBAR_VFERMI_EV_NM: f64 = 1.5 * T_HOPPING * 0.142;

/// Number of conduction subbands included in transport and charge.
const SUBBANDS: usize = 3;

/// Energy step of the Landauer integration \[eV\].
const ENERGY_STEP: f64 = 0.004;

/// Fermi-window padding in units of kT.
const WINDOW_KT: f64 = 12.0;

/// Quantum-capacitance fixed-point iterations.
const QC_ITERATIONS: usize = 12;

/// Thin-barrier WKB calibration. Plain WKB (`T = e^{-2S}`) systematically
/// over-attenuates barriers only a few decay lengths thick — exactly the
/// ~1 nm Schottky barriers of this geometry — relative to exact NEGF.
/// Each contiguous forbidden segment of length `L` has its action rescaled
/// by `alpha(L) = 1 − A·e^{−L/L0}`: thin contact barriers are softened
/// while long mid-channel (off-state) barriers keep the exact WKB decay.
/// Calibrated once against the full NEGF⇄Poisson width trend (DESIGN.md).
const WKB_THIN_AMPLITUDE: f64 = 0.60;
/// Length scale of the thin-barrier correction \[nm\].
const WKB_THIN_LENGTH_NM: f64 = 2.5;

fn segment_alpha(length_nm: f64) -> f64 {
    1.0 - WKB_THIN_AMPLITUDE * (-length_nm / WKB_THIN_LENGTH_NM).exp()
}

/// Semi-analytic ballistic SBFET model bound to one device configuration.
///
/// See the [module documentation](self) for the physics; construction
/// performs the (cached) 3D Laplace solves and band-structure calculation.
#[derive(Clone, Debug)]
pub struct SbfetModel {
    cfg: DeviceConfig,
    responses: ResponseProfiles,
    /// Conduction subband edges (eV); valence edges mirror them.
    subbands: Vec<f64>,
    /// Additional ribbon potential from oxide charge impurities \[V\].
    impurity_profile: Vec<f64>,
    /// Insulator capacitance per channel length \[F/nm\].
    c_ins_per_nm: f64,
}

impl SbfetModel {
    /// Builds the model for an ideal (impurity-free) device.
    ///
    /// # Errors
    ///
    /// Propagates Poisson and band-structure failures.
    pub fn new(cfg: &DeviceConfig) -> Result<Self, DeviceError> {
        Self::with_impurities(cfg, &[])
    }

    /// Builds the model with oxide charge impurities; each impurity's
    /// screened-Coulomb footprint on the ribbon is obtained from a 3D
    /// Poisson solve with all electrodes grounded (linear superposition).
    ///
    /// # Errors
    ///
    /// Propagates Poisson and band-structure failures.
    pub fn with_impurities(
        cfg: &DeviceConfig,
        impurities: &[ChargeImpurity],
    ) -> Result<Self, DeviceError> {
        let responses = cfg.electrode_responses()?;
        let bands = cfg.bands()?;
        let subbands = bands.conduction_subband_edges(SUBBANDS);
        if subbands.is_empty() {
            return Err(DeviceError::config(
                "ribbon has no conduction subbands (metallic index?)",
            ));
        }
        // The responses carry two extra pinned boundary samples; impurity
        // footprints vanish at the metal faces (perfect screening).
        let mut impurity_profile = vec![0.0; responses.len()];
        for imp in impurities {
            let profile = imp.ribbon_profile(cfg)?;
            for (acc, v) in impurity_profile[1..].iter_mut().zip(&profile) {
                *acc += v;
            }
        }
        // Double-gate parallel-plate capacitance with a fringe-widened
        // effective width: field lines from the wide gate planes wrap around
        // the narrow ribbon, so the electrostatic width substantially
        // exceeds the metallurgical one (~2 t_ox of fringe per side for a
        // ribbon much narrower than the gate).
        let w_eff = cfg.gnr.width_nm() + 2.0 * cfg.t_ox_nm + 1.0;
        let c_ins_per_nm = 2.0 * EPS_R_SIO2 * (EPS_0 * 1e-9) * w_eff / cfg.t_ox_nm;
        Ok(SbfetModel {
            cfg: cfg.clone(),
            responses,
            subbands,
            impurity_profile,
            c_ins_per_nm,
        })
    }

    /// The device configuration the model was built from.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Conduction subband edges (eV) of the channel ribbon.
    pub fn subband_edges(&self) -> &[f64] {
        &self.subbands
    }

    /// Band gap of the channel (eV).
    pub fn band_gap(&self) -> f64 {
        2.0 * self.subbands[0]
    }

    /// Local mid-gap potential energy profile `U(x)` in eV (electron
    /// convention, source Fermi level at 0), including the
    /// quantum-capacitance charge correction.
    pub fn potential_profile(&self, v_g: f64, v_d: f64) -> Vec<f64> {
        let v_g_eff = v_g + self.cfg.gate_offset_v;
        let phi = self.responses.superpose(0.0, v_d, v_g_eff);
        // Laplace potential -> electron midgap energy, plus impurities.
        let mut u: Vec<f64> = phi
            .iter()
            .zip(&self.impurity_profile)
            .map(|(p, imp)| -(p + imp))
            .collect();
        let u_laplace = u.clone();
        let density = self.density_table(v_d);
        // Local quantum-capacitance correction: the net mobile charge
        // counter-acts the Laplace potential with strength q^2 n / C_ins.
        for _ in 0..QC_ITERATIONS {
            let mut worst = 0.0f64;
            // Skip the pinned metal-face samples (first/last): the contact
            // metal's unlimited DOS clamps the potential there.
            for i in 1..u.len().saturating_sub(1) {
                let n_net = density.eval(u[i]);
                // Positive net charge (holes) raises phi, lowers U.
                let du = -Q_E * n_net / self.c_ins_per_nm;
                let target = u_laplace[i] + du;
                let new_u = 0.5 * u[i] + 0.5 * target;
                worst = worst.max((new_u - u[i]).abs());
                u[i] = new_u;
            }
            if worst < 1e-5 {
                break;
            }
        }
        u
    }

    /// Tabulates the local net density as a function of the midgap energy
    /// for the fixed contact Fermi levels of one bias point, so the
    /// quantum-capacitance iteration does table lookups instead of
    /// re-integrating the DOS at every site.
    fn density_table(&self, v_d: f64) -> gnr_num::LinearTable {
        let mu_s = 0.0f64;
        let mu_d = -v_d;
        let kt = self.cfg.temperature_k;
        let lo = -1.8 - v_d.abs();
        let hi = 1.8 + v_d.abs();
        let n = 181;
        let grid = gnr_num::Grid1::new(lo, hi, n).expect("static grid is valid");
        gnr_num::LinearTable::from_fn(grid, |u| self.local_net_density(u, mu_s, mu_d, kt))
    }

    /// Net local carrier density `p − n` per nm (units of q) at local
    /// midgap `u`, with ballistic average occupancy.
    fn local_net_density(&self, u: f64, mu_s: f64, mu_d: f64, t_k: f64) -> f64 {
        let mut n = 0.0;
        let mut p = 0.0;
        let de = 0.02;
        for &en in &self.subbands {
            // Integrate the 1D DOS up to where the Fermi factors die.
            let e_top = en + 1.0;
            let mut eps = en + 0.5 * de;
            while eps < e_top {
                let dos = 2.0 / (std::f64::consts::PI * HBAR_VFERMI_EV_NM) * eps
                    / (eps * eps - en * en).sqrt();
                let fe = 0.5 * (fermi(u + eps, mu_s, t_k) + fermi(u + eps, mu_d, t_k));
                let fh =
                    0.5 * ((1.0 - fermi(u - eps, mu_s, t_k)) + (1.0 - fermi(u - eps, mu_d, t_k)));
                n += dos * fe * de;
                p += dos * fh * de;
                eps += de;
            }
        }
        p - n
    }

    /// Transmission of one subband at energy `e` through profile `u`:
    /// WKB tunneling through classically forbidden segments
    /// (`|E−U| < E_n`, complex band `κ = √(E_n²−(E−U)²)/ħv_F`) combined
    /// incoherently with wave-vector-mismatch reflection between adjacent
    /// propagating segments (`T_step = 4k₁k₂/(k₁+k₂)²`). The mismatch term
    /// captures quantum reflection off sharp potential *wells* (e.g. a +q
    /// impurity footprint), which plain WKB would pass with T = 1.
    fn wkb_transmission(&self, e: f64, u: &[f64], en: f64) -> f64 {
        let dx = self.responses.x_step_nm;
        let hv = HBAR_VFERMI_EV_NM;
        let mut action = 0.0;
        let mut seg_action = 0.0;
        let mut seg_len = 0.0;
        let mut mismatch = 1.0;
        let mut prev_k: Option<f64> = None;
        for &ui in u {
            let d = e - ui;
            let k2 = d * d - en * en;
            if k2 < 0.0 {
                // Forbidden segment: accumulate tunneling action.
                seg_action += (-k2).sqrt() / hv * dx;
                seg_len += dx;
                prev_k = None;
            } else {
                if seg_len > 0.0 {
                    action += segment_alpha(seg_len) * seg_action;
                    seg_action = 0.0;
                    seg_len = 0.0;
                }
                let k = k2.sqrt() / hv;
                if let Some(kp) = prev_k {
                    let denom = (kp + k) * (kp + k);
                    if denom > 0.0 {
                        mismatch *= 4.0 * kp * k / denom;
                    }
                }
                prev_k = Some(k);
            }
        }
        if seg_len > 0.0 {
            action += segment_alpha(seg_len) * seg_action;
        }
        mismatch * (-2.0 * action).exp()
    }

    /// Drain current \[A\] at gate voltage `v_g` and drain voltage `v_d`
    /// (source grounded). Positive current flows into the drain.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Config`] for non-finite bias input.
    pub fn drain_current(&self, v_g: f64, v_d: f64) -> Result<f64, DeviceError> {
        if !v_g.is_finite() || !v_d.is_finite() {
            return Err(DeviceError::config("bias voltages must be finite"));
        }
        let u = self.potential_profile(v_g, v_d);
        Ok(self.current_from_profile(&u, v_d))
    }

    fn current_from_profile(&self, u: &[f64], v_d: f64) -> f64 {
        let mu_s = 0.0f64;
        let mu_d = -v_d;
        let kt = self.cfg.temperature_k;
        let pad = WINDOW_KT * gnr_num::consts::K_B_EV * kt;
        let (lo, hi) = (mu_s.min(mu_d) - pad, mu_s.max(mu_d) + pad);
        let steps = ((hi - lo) / ENERGY_STEP).ceil() as usize + 1;
        let de = (hi - lo) / (steps - 1).max(1) as f64;
        let mut integral = 0.0;
        for s in 0..steps {
            let e = lo + s as f64 * de;
            let window = fermi(e, mu_s, kt) - fermi(e, mu_d, kt);
            if window.abs() < 1e-12 {
                continue;
            }
            let mut t_total = 0.0;
            for &en in &self.subbands {
                t_total += self.wkb_transmission(e, u, en);
            }
            let weight = if s == 0 || s == steps - 1 { 0.5 } else { 1.0 };
            integral += weight * t_total * window * de;
        }
        G_QUANTUM * integral
    }

    /// Net mobile channel charge \[C\] (positive for hole accumulation).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Config`] for non-finite bias input.
    pub fn channel_charge(&self, v_g: f64, v_d: f64) -> Result<f64, DeviceError> {
        if !v_g.is_finite() || !v_d.is_finite() {
            return Err(DeviceError::config("bias voltages must be finite"));
        }
        let u = self.potential_profile(v_g, v_d);
        Ok(self.charge_from_profile(&u, v_d))
    }

    fn charge_from_profile(&self, u: &[f64], v_d: f64) -> f64 {
        let density = self.density_table(v_d);
        let dx = self.responses.x_step_nm;
        let total_q: f64 = u.iter().map(|&ui| density.eval(ui) * dx).sum();
        total_q * Q_E
    }

    /// Evaluates drain current \[A\] and channel charge \[C\] together,
    /// sharing the (dominant-cost) self-consistent potential profile —
    /// the fast path for lookup-table construction.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Config`] for non-finite bias input.
    pub fn evaluate(&self, v_g: f64, v_d: f64) -> Result<(f64, f64), DeviceError> {
        if !v_g.is_finite() || !v_d.is_finite() {
            return Err(DeviceError::config("bias voltages must be finite"));
        }
        let u = self.potential_profile(v_g, v_d);
        let i = self.current_from_profile(&u, v_d);
        let q = self.charge_from_profile(&u, v_d);
        Ok((i, q))
    }

    /// Conduction-band-edge profile `E_C(x)` in eV along the channel
    /// (the paper's Fig. 5(a) diagnostic): `U(x) + E_g/2`.
    pub fn conduction_band_profile(&self, v_g: f64, v_d: f64) -> Vec<(f64, f64)> {
        let u = self.potential_profile(v_g, v_d);
        let half_gap = self.subbands[0];
        let dx = self.responses.x_step_nm;
        u.iter()
            .enumerate()
            .map(|(i, &ui)| ((i as f64 + 0.5) * dx, ui + half_gap))
            .collect()
    }

    /// The gate voltage of minimum leakage at drain bias `v_d` — the
    /// paper's §2 observation that the ambipolar minimum sits near
    /// `V_G ≈ V_D/2`; located by golden-section search.
    ///
    /// # Errors
    ///
    /// Propagates current-evaluation failures.
    pub fn minimum_leakage_vg(&self, v_d: f64) -> Result<f64, DeviceError> {
        let mut a = -0.2;
        let mut b = v_d + 0.2;
        let phi = (5f64.sqrt() - 1.0) / 2.0;
        let mut x1 = b - phi * (b - a);
        let mut x2 = a + phi * (b - a);
        let mut f1 = self.drain_current(x1, v_d)?;
        let mut f2 = self.drain_current(x2, v_d)?;
        for _ in 0..40 {
            if f1 < f2 {
                b = x2;
                x2 = x1;
                f2 = f1;
                x1 = b - phi * (b - a);
                f1 = self.drain_current(x1, v_d)?;
            } else {
                a = x1;
                x1 = x2;
                f1 = f2;
                x2 = a + phi * (b - a);
                f2 = self.drain_current(x2, v_d)?;
            }
            if (b - a).abs() < 1e-3 {
                break;
            }
        }
        Ok(0.5 * (a + b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(n: usize) -> SbfetModel {
        SbfetModel::new(&DeviceConfig::test_small(n).unwrap()).unwrap()
    }

    #[test]
    fn subbands_and_gap() {
        let m = model(12);
        assert_eq!(m.subband_edges().len(), SUBBANDS);
        assert!(m.band_gap() > 0.4 && m.band_gap() < 0.8);
    }

    #[test]
    fn ambipolar_minimum_near_half_vd() {
        let m = model(12);
        let vmin = m.minimum_leakage_vg(0.5).unwrap();
        assert!(
            (vmin - 0.25).abs() < 0.12,
            "ambipolar minimum at {vmin}, expected ~0.25"
        );
    }

    #[test]
    fn on_current_magnitude_reasonable() {
        // Paper: N=12 at VG = VD = 0.5 V carries ~6-9 uA per ribbon
        // (6300 uA/um x ~1.35 nm). Accept a generous band around that.
        let m = model(12);
        let i_on = m.drain_current(0.5, 0.5).unwrap();
        assert!(
            i_on > 1e-6 && i_on < 4e-5,
            "I_on = {i_on:.3e} A out of expected range"
        );
    }

    #[test]
    fn min_leakage_increases_exponentially_with_vd() {
        // Paper Fig. 2(a): drain voltage exponentially increases the
        // minimum leakage current.
        let m = model(12);
        let i1 = m
            .drain_current(m.minimum_leakage_vg(0.25).unwrap(), 0.25)
            .unwrap();
        let i2 = m
            .drain_current(m.minimum_leakage_vg(0.5).unwrap(), 0.5)
            .unwrap();
        let i3 = m
            .drain_current(m.minimum_leakage_vg(0.75).unwrap(), 0.75)
            .unwrap();
        assert!(i2 > 2.0 * i1, "{i1:.3e} {i2:.3e}");
        assert!(i3 > 2.0 * i2, "{i2:.3e} {i3:.3e}");
    }

    #[test]
    fn narrower_ribbon_better_onoff() {
        // Paper Fig. 4: N=9 has I_on/I_off ~ 1000x; N=18's gap is too small.
        let on_off = |n: usize| {
            let m = model(n);
            let vd = 0.5;
            let i_on = m.drain_current(0.75, vd).unwrap();
            let i_off = m
                .drain_current(m.minimum_leakage_vg(vd).unwrap(), vd)
                .unwrap();
            i_on / i_off
        };
        let r9 = on_off(9);
        let r18 = on_off(18);
        assert!(r9 > 20.0 * r18, "on/off N9 {r9:.1} vs N18 {r18:.1}");
        assert!(r9 > 100.0, "N=9 on/off {r9:.1}");
    }

    #[test]
    fn current_increases_with_vg_in_ntype_branch() {
        let m = model(12);
        let vd = 0.5;
        let i1 = m.drain_current(0.45, vd).unwrap();
        let i2 = m.drain_current(0.6, vd).unwrap();
        let i3 = m.drain_current(0.75, vd).unwrap();
        assert!(i3 > i2 && i2 > i1);
    }

    #[test]
    fn hole_branch_rises_at_low_vg() {
        let m = model(12);
        let vd = 0.5;
        let i_min = m
            .drain_current(m.minimum_leakage_vg(vd).unwrap(), vd)
            .unwrap();
        let i_low = m.drain_current(-0.2, vd).unwrap();
        assert!(
            i_low > 3.0 * i_min,
            "hole branch {i_low:.3e} vs min {i_min:.3e}"
        );
    }

    #[test]
    fn charge_sign_tracks_gate() {
        let m = model(12);
        // Strong n-branch: electron accumulation -> negative net charge.
        let q_n = m.channel_charge(0.75, 0.1).unwrap();
        // Strong p-branch: hole accumulation -> positive net charge.
        let q_p = m.channel_charge(-0.5, 0.1).unwrap();
        assert!(q_n < 0.0, "q_n = {q_n:.3e}");
        assert!(q_p > 0.0, "q_p = {q_p:.3e}");
    }

    #[test]
    fn gate_offset_shifts_iv_curve() {
        // Paper Fig. 2(b): a work-function offset translates the I-V curve
        // along V_G.
        let cfg = DeviceConfig::test_small(12).unwrap();
        let base = SbfetModel::new(&cfg).unwrap();
        let mut cfg2 = cfg.clone();
        cfg2.gate_offset_v = 0.2;
        let shifted = SbfetModel::new(&cfg2).unwrap();
        for vg in [0.1, 0.3, 0.5] {
            let a = base.drain_current(vg + 0.2, 0.5).unwrap();
            let b = shifted.drain_current(vg, 0.5).unwrap();
            assert!(
                (a - b).abs() / a.max(b) < 0.02,
                "offset equivalence at vg={vg}: {a:.3e} vs {b:.3e}"
            );
        }
    }

    #[test]
    fn band_profile_has_schottky_barriers() {
        let m = model(12);
        let prof = m.conduction_band_profile(0.5, 0.5);
        let half_gap = m.band_gap() / 2.0;
        // At the source face the conduction band is pinned at Eg/2 exactly;
        // mid-channel the gate pulls it far below.
        let first = prof.first().unwrap().1;
        let mid = prof[prof.len() / 2].1;
        assert!(
            (first - half_gap).abs() < 1e-9,
            "pinned barrier {first} vs {half_gap}"
        );
        assert!(mid < 0.0, "mid-channel band edge {mid}");
        assert!(first > mid + 0.15, "barrier must dominate mid-channel");
    }

    #[test]
    fn rejects_non_finite_bias() {
        let m = model(9);
        assert!(m.drain_current(f64::NAN, 0.5).is_err());
        assert!(m.channel_charge(0.1, f64::INFINITY).is_err());
    }
}
