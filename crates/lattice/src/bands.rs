//! Bloch band structure of the infinite A-GNR.
//!
//! Diagonalizes `H(k) = H00 + H01·e^{ik} + H01†·e^{-ik}` on a uniform
//! k-grid over half the Brillouin zone (the spectrum is symmetric in ±k)
//! and extracts the band gap, subband edges, and band-edge effective masses
//! consumed by the semi-analytic device model.

use crate::error::LatticeError;
use crate::hamiltonian::unit_cell_hamiltonian;
use crate::AGnr;
use gnr_num::c64;
use gnr_num::consts::{HBAR_EV, M_E, Q_E};

/// Band structure of an A-GNR sampled on a uniform k-grid.
#[derive(Clone, Debug)]
pub struct BandStructure {
    gnr: AGnr,
    /// k samples in units of 1/period, spanning `[0, π]`.
    k: Vec<f64>,
    /// `bands[b][ik]`: energy of band `b` at `k[ik]`, in eV, sorted by band.
    bands: Vec<Vec<f64>>,
}

/// Computes the band structure of `gnr` on `k_points ≥ 2` samples of
/// `k ∈ [0, π]` (in units of the inverse period).
///
/// # Errors
///
/// Returns [`LatticeError::BandSolve`] if the eigensolver fails.
pub fn compute(gnr: AGnr, k_points: usize) -> Result<BandStructure, LatticeError> {
    let k_points = k_points.max(2);
    let (h00, h01) = unit_cell_hamiltonian(gnr);
    let h10 = h01.adjoint();
    let m = gnr.atoms_per_cell();
    let mut k = Vec::with_capacity(k_points);
    let mut bands = vec![Vec::with_capacity(k_points); m];
    for ik in 0..k_points {
        let kk = std::f64::consts::PI * ik as f64 / (k_points - 1) as f64;
        let phase = c64(kk.cos(), kk.sin());
        let hk = &(&h00 + &h01.scale(phase)) + &h10.scale(phase.conj());
        let (evals, _) = hk.herm_eigen()?;
        for (b, e) in evals.into_iter().enumerate() {
            bands[b].push(e);
        }
        k.push(kk);
    }
    Ok(BandStructure { gnr, k, bands })
}

impl BandStructure {
    /// The ribbon this band structure belongs to.
    pub fn gnr(&self) -> AGnr {
        self.gnr
    }

    /// k samples (units: 1/period, spanning `[0, π]`).
    pub fn k_samples(&self) -> &[f64] {
        &self.k
    }

    /// All subbands: `bands()[b][ik]` in eV.
    pub fn bands(&self) -> &[Vec<f64>] {
        &self.bands
    }

    /// Lowest conduction-band energy (eV): minimum over k of the lowest
    /// band above the charge-neutrality point (0 eV).
    pub fn conduction_edge(&self) -> f64 {
        self.bands
            .iter()
            .flat_map(|band| band.iter().copied())
            .filter(|&e| e > 0.0)
            .fold(f64::INFINITY, f64::min)
    }

    /// Highest valence-band energy (eV).
    pub fn valence_edge(&self) -> f64 {
        self.bands
            .iter()
            .flat_map(|band| band.iter().copied())
            .filter(|&e| e <= 0.0)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Band gap `E_c − E_v` in eV.
    pub fn gap(&self) -> f64 {
        self.conduction_edge() - self.valence_edge()
    }

    /// Energies of the first `count` conduction subband minima, ascending
    /// (eV). Each subband contributes its own minimum over k.
    pub fn conduction_subband_edges(&self, count: usize) -> Vec<f64> {
        let mut mins: Vec<f64> = self
            .bands
            .iter()
            .filter_map(|band| {
                let lo = band.iter().copied().fold(f64::INFINITY, f64::min);
                if lo > 0.0 {
                    Some(lo)
                } else {
                    None
                }
            })
            .collect();
        mins.sort_by(f64::total_cmp);
        mins.truncate(count);
        mins
    }

    /// Effective mass of the lowest conduction band at its minimum, in units
    /// of the free-electron mass, from a parabolic fit of the three samples
    /// around the minimum.
    pub fn conduction_effective_mass(&self) -> f64 {
        // Identify the band and k-index of the conduction minimum.
        let mut best = (0usize, 0usize, f64::INFINITY);
        for (b, band) in self.bands.iter().enumerate() {
            for (ik, &e) in band.iter().enumerate() {
                if e > 0.0 && e < best.2 {
                    best = (b, ik, e);
                }
            }
        }
        let (b, ik, _) = best;
        let band = &self.bands[b];
        let i = ik.clamp(1, band.len() - 2);
        let dk = (self.k[1] - self.k[0]) / self.gnr.period_m(); // 1/m
                                                                // Second derivative via central difference (eV·m²).
        let d2 = (band[i + 1] - 2.0 * band[i] + band[i - 1]) / (dk * dk);
        if d2 <= 0.0 {
            return f64::INFINITY;
        }
        // m* = ħ² / (d²E/dk²); convert eV to J.
        let hbar_j = HBAR_EV * Q_E; // J·s
        hbar_j * HBAR_EV / d2 / M_E
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gap_of(n: usize) -> f64 {
        AGnr::new(n).unwrap().band_structure(96).unwrap().gap()
    }

    #[test]
    fn spectrum_is_particle_hole_symmetric_without_edge_relaxation() {
        // With edge relaxation the symmetry is only mildly broken; check the
        // edges are within ~0.2 eV of symmetric.
        let bs = AGnr::new(12).unwrap().band_structure(64).unwrap();
        let ec = bs.conduction_edge();
        let ev = bs.valence_edge();
        assert!((ec + ev).abs() < 0.2, "ec={ec} ev={ev}");
    }

    #[test]
    fn gap_decreases_with_width_in_3p_family() {
        let g9 = gap_of(9);
        let g12 = gap_of(12);
        let g15 = gap_of(15);
        let g18 = gap_of(18);
        assert!(g9 > g12 && g12 > g15 && g15 > g18, "{g9} {g12} {g15} {g18}");
        // Approximate inverse proportionality to width.
        assert!(g9 / g18 > 1.6);
    }

    #[test]
    fn n12_gap_matches_literature() {
        // pz TB with 12% edge relaxation: N=12 gap ~ 0.6 eV (Son et al.).
        let g = gap_of(12);
        assert!(g > 0.45 && g < 0.75, "g = {g}");
    }

    #[test]
    fn family_3p_plus_2_has_small_gap() {
        let g11 = gap_of(11);
        let g12 = gap_of(12);
        assert!(
            g11 < 0.35 * g12,
            "3p+2 family should be nearly metallic: {g11} vs {g12}"
        );
    }

    #[test]
    fn family_3p_plus_1_has_larger_gap_than_3p() {
        let g10 = gap_of(10);
        let g12 = gap_of(12);
        assert!(g10 > g12, "{g10} vs {g12}");
    }

    #[test]
    fn band_count_is_2n() {
        let bs = AGnr::new(9).unwrap().band_structure(16).unwrap();
        assert_eq!(bs.bands().len(), 18);
        assert_eq!(bs.k_samples().len(), 16);
    }

    #[test]
    fn subband_edges_sorted_and_positive() {
        let bs = AGnr::new(12).unwrap().band_structure(64).unwrap();
        let edges = bs.conduction_subband_edges(3);
        assert_eq!(edges.len(), 3);
        assert!(edges.windows(2).all(|w| w[0] <= w[1]));
        assert!((edges[0] - bs.conduction_edge()).abs() < 1e-12);
    }

    #[test]
    fn effective_mass_reasonable() {
        // Literature: m* of N=12 A-GNR ~ 0.05-0.2 m0.
        let bs = AGnr::new(12).unwrap().band_structure(192).unwrap();
        let m = bs.conduction_effective_mass();
        assert!(m > 0.01 && m < 0.5, "m* = {m} m0");
    }
}
