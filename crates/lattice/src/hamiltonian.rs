//! Tight-binding Hamiltonian assembly.
//!
//! Two views of the same physics:
//!
//! * [`unit_cell_hamiltonian`] — Bloch blocks `(H00, H01)` of the infinite
//!   ribbon, used for band structure and for semi-infinite contact leads;
//! * [`DeviceHamiltonian`] — the block-tridiagonal Hamiltonian of a finite
//!   channel with an on-site potential, partitioned into one layer per unit
//!   cell for the recursive Green's-function solver.

use crate::error::LatticeError;
use crate::AGnr;
use gnr_num::consts::T_HOPPING;
use gnr_num::{c64, CMatrix, Complex64};

/// Returns the Bloch blocks `(H00, H01)` of an infinite A-GNR: `H00` is the
/// intra-cell Hamiltonian of one `2N`-atom unit cell and `H01` the coupling
/// to the next cell, both in eV with the pz on-site energy at zero.
///
/// The Bloch Hamiltonian at wave number `k` (in units of 1/period) is
/// `H(k) = H00 + H01·e^{ik} + H01†·e^{-ik}`.
pub fn unit_cell_hamiltonian(gnr: AGnr) -> (CMatrix, CMatrix) {
    // Build a 3-cell segment and read the couplings of the middle cell so
    // every intra/inter-cell bond pattern is represented.
    let lat = gnr.lattice(3);
    let m = gnr.atoms_per_cell();
    let mut h00 = CMatrix::zeros(m, m);
    let mut h01 = CMatrix::zeros(m, m);
    for b in lat.bonds() {
        let (ca, cb) = (lat.atoms()[b.a].cell, lat.atoms()[b.b].cell);
        let t = c64(-T_HOPPING * b.scale, 0.0);
        let (ia, ib) = (b.a % m, b.b % m);
        if ca == 1 && cb == 1 {
            h00.set(ia, ib, t);
            h00.set(ib, ia, t);
        } else if ca == 1 && cb == 2 {
            h01.set(ia, ib, t);
        } else if ca == 0 && cb == 1 {
            // Equivalent to an H01 bond from cell 1 to cell 2 by periodicity.
            h01.set(ia, ib, t);
        }
    }
    (h00, h01)
}

/// The layer-partitioned Hamiltonian of a finite GNR channel.
///
/// Layer `l` is unit cell `l`; `diag[l]` contains the intra-layer
/// Hamiltonian plus the on-site potential of that layer, and `coupling`
/// the (layer-independent) forward coupling `H_{l,l+1}`.
///
/// # Example
///
/// ```
/// use gnr_lattice::{AGnr, DeviceHamiltonian};
///
/// # fn main() -> Result<(), gnr_lattice::LatticeError> {
/// let gnr = AGnr::new(9)?;
/// let flat = vec![0.0; gnr.atoms_per_cell() * 10];
/// let h = DeviceHamiltonian::new(gnr, 10, &flat)?;
/// assert_eq!(h.layers(), 10);
/// assert_eq!(h.layer_dim(), 18);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct DeviceHamiltonian {
    gnr: AGnr,
    diag: Vec<CMatrix>,
    coupling: CMatrix,
}

impl DeviceHamiltonian {
    /// Builds the device Hamiltonian for `cells` unit cells with per-atom
    /// on-site potential `potential_ev` (ordered like
    /// [`RibbonLattice::atoms`], i.e. cell-major).
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::EmptySegment`] when `cells == 0` and
    /// [`LatticeError::PotentialLength`] when the potential length does not
    /// equal the atom count.
    pub fn new(gnr: AGnr, cells: usize, potential_ev: &[f64]) -> Result<Self, LatticeError> {
        if cells == 0 {
            return Err(LatticeError::EmptySegment);
        }
        let m = gnr.atoms_per_cell();
        if potential_ev.len() != m * cells {
            return Err(LatticeError::PotentialLength {
                got: potential_ev.len(),
                expected: m * cells,
            });
        }
        let (h00, h01) = unit_cell_hamiltonian(gnr);
        let mut diag = Vec::with_capacity(cells);
        for l in 0..cells {
            let mut block = h00.clone();
            for i in 0..m {
                block.add_to(i, i, c64(potential_ev[l * m + i], 0.0));
            }
            diag.push(block);
        }
        Ok(DeviceHamiltonian {
            gnr,
            diag,
            coupling: h01,
        })
    }

    /// Convenience constructor with zero potential everywhere.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::EmptySegment`] when `cells == 0`.
    pub fn flat_band(gnr: AGnr, cells: usize) -> Result<Self, LatticeError> {
        let m = gnr.atoms_per_cell();
        Self::new(gnr, cells, &vec![0.0; m * cells])
    }

    /// The ribbon descriptor.
    pub fn gnr(&self) -> AGnr {
        self.gnr
    }

    /// Number of layers (unit cells).
    pub fn layers(&self) -> usize {
        self.diag.len()
    }

    /// Dimension of one layer block (`2N`).
    pub fn layer_dim(&self) -> usize {
        self.coupling.rows()
    }

    /// The intra-layer Hamiltonian block of layer `l` (potential included).
    ///
    /// # Panics
    ///
    /// Panics if `l >= layers()`.
    pub fn diag_block(&self, l: usize) -> &CMatrix {
        &self.diag[l]
    }

    /// The forward coupling block `H_{l,l+1}` (identical for all layers).
    pub fn coupling_block(&self) -> &CMatrix {
        &self.coupling
    }

    /// Mean on-site potential of layer `l` in eV — the "conduction band
    /// profile" diagnostic plotted in the paper's Fig. 5(a) is derived from
    /// this plus half the band gap.
    ///
    /// # Panics
    ///
    /// Panics if `l >= layers()`.
    pub fn layer_potential_ev(&self, l: usize) -> f64 {
        let m = self.layer_dim();
        let (h00, _) = unit_cell_hamiltonian(self.gnr);
        let mut acc = 0.0;
        for i in 0..m {
            acc += (self.diag[l].get(i, i) - h00.get(i, i)).re;
        }
        acc / m as f64
    }

    /// Adds `energy_ev` to the on-site energy of one atom (cell-major
    /// index, as in [`crate::RibbonLattice::atoms`]). A very large value
    /// effectively removes the site — the standard trick for modelling
    /// lattice vacancies and edge roughness without changing the layered
    /// block structure the RGF solver relies on.
    ///
    /// # Panics
    ///
    /// Panics if `atom` is out of range.
    pub fn add_site_energy(&mut self, atom: usize, energy_ev: f64) {
        let m = self.layer_dim();
        let layer = atom / m;
        let i = atom % m;
        assert!(layer < self.layers(), "atom index out of range");
        self.diag[layer].add_to(i, i, c64(energy_ev, 0.0));
    }

    /// Assembles the full dense Hamiltonian (for validation on small
    /// segments; the RGF path never materializes this).
    pub fn to_dense(&self) -> CMatrix {
        let m = self.layer_dim();
        let n = m * self.layers();
        let mut h = CMatrix::zeros(n, n);
        for l in 0..self.layers() {
            for i in 0..m {
                for j in 0..m {
                    let v = self.diag[l].get(i, j);
                    if v != Complex64::ZERO {
                        h.set(l * m + i, l * m + j, v);
                    }
                }
            }
            if l + 1 < self.layers() {
                for i in 0..m {
                    for j in 0..m {
                        let v = self.coupling.get(i, j);
                        if v != Complex64::ZERO {
                            h.set(l * m + i, (l + 1) * m + j, v);
                            h.set((l + 1) * m + j, l * m + i, v.conj());
                        }
                    }
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnr_num::consts::EDGE_BOND_FACTOR;

    #[test]
    fn h00_is_hermitian_h01_couples_forward() {
        let gnr = AGnr::new(9).unwrap();
        let (h00, h01) = unit_cell_hamiltonian(gnr);
        assert!(h00.hermiticity_defect() < 1e-14);
        assert_eq!(h00.rows(), 18);
        // H01 must be nonzero (cells couple) but not Hermitian in general.
        assert!(h01.norm_fro() > 0.0);
    }

    #[test]
    fn total_hopping_count_matches_three_neighbors() {
        // Each atom has exactly 3 neighbours in the infinite ribbon interior;
        // row sums of |H00| + |H01| + |H01^T| must equal 3t (edges: 2 bonds,
        // one strengthened).
        let gnr = AGnr::new(12).unwrap();
        let (h00, h01) = unit_cell_hamiltonian(gnr);
        let m = gnr.atoms_per_cell();
        for i in 0..m {
            let mut bonds = 0.0;
            for j in 0..m {
                bonds += h00.get(i, j).norm() + h01.get(i, j).norm() + h01.get(j, i).norm();
            }
            let row = (i / 2) % gnr.index().max(1);
            let _ = row;
            let t = T_HOPPING;
            // Either 3 plain bonds, or 1 edge bond + 1 plain bond, or
            // 2 plain bonds + 1 edge bond... enumerate admissible sums.
            let admissible = [
                3.0 * t,
                2.0 * t + EDGE_BOND_FACTOR * t,
                t + EDGE_BOND_FACTOR * t,
                2.0 * t,
            ];
            assert!(
                admissible.iter().any(|&s| (bonds - s).abs() < 1e-9),
                "atom {i}: bond sum {bonds}"
            );
        }
    }

    #[test]
    fn device_hamiltonian_validation() {
        let gnr = AGnr::new(9).unwrap();
        assert!(matches!(
            DeviceHamiltonian::new(gnr, 0, &[]),
            Err(LatticeError::EmptySegment)
        ));
        assert!(matches!(
            DeviceHamiltonian::new(gnr, 2, &[0.0; 5]),
            Err(LatticeError::PotentialLength { .. })
        ));
    }

    #[test]
    fn dense_assembly_is_hermitian() {
        let gnr = AGnr::new(6).unwrap();
        let m = gnr.atoms_per_cell();
        let pot: Vec<f64> = (0..m * 4).map(|i| 0.01 * i as f64).collect();
        let h = DeviceHamiltonian::new(gnr, 4, &pot).unwrap();
        let dense = h.to_dense();
        assert!(dense.hermiticity_defect() < 1e-14);
        assert_eq!(dense.rows(), m * 4);
    }

    #[test]
    fn potential_shifts_diagonal() {
        let gnr = AGnr::new(6).unwrap();
        let m = gnr.atoms_per_cell();
        let mut pot = vec![0.0; m * 3];
        for v in pot[m..2 * m].iter_mut() {
            *v = 0.25;
        }
        let h = DeviceHamiltonian::new(gnr, 3, &pot).unwrap();
        assert!((h.layer_potential_ev(0) - 0.0).abs() < 1e-14);
        assert!((h.layer_potential_ev(1) - 0.25).abs() < 1e-14);
        assert!((h.layer_potential_ev(2) - 0.0).abs() < 1e-14);
    }

    #[test]
    fn flat_band_matches_explicit_zero_potential() {
        let gnr = AGnr::new(9).unwrap();
        let a = DeviceHamiltonian::flat_band(gnr, 3).unwrap();
        let b = DeviceHamiltonian::new(gnr, 3, &vec![0.0; 18 * 3]).unwrap();
        assert!(a.to_dense().distance(&b.to_dense()) < 1e-15);
    }
}
