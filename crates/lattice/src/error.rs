//! Error type for lattice construction and band solves.

use gnr_num::NumError;
use std::error::Error;
use std::fmt;

/// Errors produced while building ribbon lattices or solving band structures.
#[derive(Clone, Debug, PartialEq)]
pub enum LatticeError {
    /// GNR index below the minimum meaningful value.
    IndexTooSmall {
        /// The offending index.
        n: usize,
    },
    /// A ribbon segment with zero unit cells was requested.
    EmptySegment,
    /// The supplied potential does not have one entry per atom.
    PotentialLength {
        /// Entries supplied.
        got: usize,
        /// Entries required (atom count).
        expected: usize,
    },
    /// The Bloch eigenvalue solve failed.
    BandSolve(NumError),
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::IndexTooSmall { n } => {
                write!(f, "gnr index {n} is too small (minimum 3)")
            }
            LatticeError::EmptySegment => write!(f, "ribbon segment needs at least one cell"),
            LatticeError::PotentialLength { got, expected } => write!(
                f,
                "potential has {got} entries but the lattice has {expected} atoms"
            ),
            LatticeError::BandSolve(e) => write!(f, "band solve failed: {e}"),
        }
    }
}

impl Error for LatticeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LatticeError::BandSolve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumError> for LatticeError {
    fn from(e: NumError) -> Self {
        LatticeError::BandSolve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(LatticeError::IndexTooSmall { n: 1 }
            .to_string()
            .contains('1'));
        assert!(LatticeError::PotentialLength {
            got: 3,
            expected: 24
        }
        .to_string()
        .contains("24"));
    }
}
