//! `gnr-lattice` — atomistic geometry and tight-binding Hamiltonians for
//! armchair graphene nanoribbons (A-GNRs).
//!
//! The paper (§2) simulates 15 nm-long armchair-edge GNR channels with index
//! N = 9…18 in a pz-orbital basis with hopping `t = 2.7 eV` and
//! Son–Cohen–Louie edge-bond relaxation. This crate provides:
//!
//! * [`AGnr`] — ribbon descriptor (index, width, band-structure queries);
//! * [`RibbonLattice`] — explicit atom coordinates and the neighbour graph
//!   for a finite ribbon segment;
//! * [`unit_cell_hamiltonian`] — the Bloch blocks `(H00, H01)` of the
//!   infinite ribbon;
//! * [`DeviceHamiltonian`] — the layer-partitioned Hamiltonian of a finite
//!   channel with an arbitrary on-site potential, ready for the recursive
//!   Green's-function solver in `gnr-negf`;
//! * [`BandStructure`] — E(k) subbands, band gap, and band-edge effective
//!   masses;
//! * [`ZGnr`] — zigzag ribbons (metallic, flat edge-state bands), the
//!   edge-family contrast of the paper's ref. [12].
//!
//! # Example
//!
//! ```
//! use gnr_lattice::AGnr;
//!
//! # fn main() -> Result<(), gnr_lattice::LatticeError> {
//! let gnr = AGnr::new(12)?;
//! let bands = gnr.band_structure(64)?;
//! // N = 12 belongs to the 3p family: semiconducting with Eg ~ 0.6 eV.
//! assert!(bands.gap() > 0.3 && bands.gap() < 1.0);
//! # Ok(())
//! # }
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod bands;
pub mod error;
pub mod geometry;
pub mod hamiltonian;
pub mod zigzag;

pub use bands::BandStructure;
pub use error::LatticeError;
pub use geometry::{Atom, RibbonLattice};
pub use hamiltonian::{unit_cell_hamiltonian, DeviceHamiltonian};
pub use zigzag::ZGnr;

use gnr_num::consts::{A_CC, NM};

/// Families of armchair GNRs classified by `N mod 3`; the paper uses the
/// `3p` family (N = 9, 12, 15, 18) plus notes that `3p+1` is also
/// semiconducting while `3p+2` has a small gap.
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub enum AGnrFamily {
    /// `N = 3p`: moderate gap, used throughout the paper.
    ThreeP,
    /// `N = 3p + 1`: largest gap of the three families.
    ThreePPlus1,
    /// `N = 3p + 2`: nearly metallic (tiny gap from edge relaxation).
    ThreePPlus2,
}

/// An armchair graphene nanoribbon identified by its index `N`
/// (the number of dimer lines across the width).
///
/// The paper restricts itself to semiconducting ribbons with
/// `N ∈ {9, 12, 15, 18}`; this type accepts any `N ≥ 3`.
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub struct AGnr {
    n: usize,
}

impl AGnr {
    /// Creates a ribbon descriptor for index `n`.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::IndexTooSmall`] for `n < 3` (narrower ribbons
    /// are not meaningful honeycomb strips).
    pub fn new(n: usize) -> Result<Self, LatticeError> {
        if n < 3 {
            return Err(LatticeError::IndexTooSmall { n });
        }
        Ok(AGnr { n })
    }

    /// The GNR index `N` (number of dimer lines).
    #[inline]
    pub fn index(&self) -> usize {
        self.n
    }

    /// Ribbon width `(N − 1)·√3/2·a_cc` in metres.
    ///
    /// For N = 9 this is ≈ 1.0 nm, matching the paper's "1.1 nm" quote
    /// (which includes the edge C–H termination allowance).
    pub fn width_m(&self) -> f64 {
        (self.n as f64 - 1.0) * 3f64.sqrt() / 2.0 * A_CC
    }

    /// Ribbon width in nanometres.
    pub fn width_nm(&self) -> f64 {
        self.width_m() / NM
    }

    /// Translational period along the transport axis, `3·a_cc` \[m\].
    pub fn period_m(&self) -> f64 {
        3.0 * A_CC
    }

    /// Family classification by `N mod 3`.
    pub fn family(&self) -> AGnrFamily {
        match self.n % 3 {
            0 => AGnrFamily::ThreeP,
            1 => AGnrFamily::ThreePPlus1,
            _ => AGnrFamily::ThreePPlus2,
        }
    }

    /// Number of atoms in one translational unit cell (`2N`).
    pub fn atoms_per_cell(&self) -> usize {
        2 * self.n
    }

    /// Computes the ribbon band structure on `k_points` samples of the
    /// Brillouin zone.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::BandSolve`] if the Hermitian eigensolver
    /// fails (does not occur for physical inputs).
    pub fn band_structure(&self, k_points: usize) -> Result<BandStructure, LatticeError> {
        bands::compute(*self, k_points)
    }

    /// Builds the lattice of a finite segment with `cells` unit cells.
    pub fn lattice(&self, cells: usize) -> RibbonLattice {
        RibbonLattice::new(*self, cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_validation() {
        assert!(AGnr::new(2).is_err());
        assert!(AGnr::new(3).is_ok());
        assert_eq!(AGnr::new(12).unwrap().index(), 12);
    }

    #[test]
    fn width_matches_paper() {
        // Paper: N=9 has width 1.1 nm; our bare-lattice width is ~0.98 nm
        // and each index step of 3 adds ~3.7 Angstrom.
        let w9 = AGnr::new(9).unwrap().width_nm();
        assert!((w9 - 0.98).abs() < 0.05, "w9 = {w9}");
        let w12 = AGnr::new(12).unwrap().width_nm();
        assert!(((w12 - w9) - 0.37).abs() < 0.02);
    }

    #[test]
    fn families() {
        assert_eq!(AGnr::new(9).unwrap().family(), AGnrFamily::ThreeP);
        assert_eq!(AGnr::new(10).unwrap().family(), AGnrFamily::ThreePPlus1);
        assert_eq!(AGnr::new(11).unwrap().family(), AGnrFamily::ThreePPlus2);
    }

    #[test]
    fn atoms_per_cell_is_2n() {
        assert_eq!(AGnr::new(7).unwrap().atoms_per_cell(), 14);
    }
}
