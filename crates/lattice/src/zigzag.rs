//! Zigzag graphene nanoribbons (Z-GNRs).
//!
//! The paper's device work uses armchair ribbons exclusively (sub-10 nm
//! A-GNRs are always semiconducting), but its ref. [12] — Nakada et al.,
//! PRB 54, 17954 — establishes the edge-shape dependence this module
//! validates the framework against: zigzag ribbons are metallic with
//! partially flat bands at the Fermi level (`E ≈ 0` for `k ≳ 2π/3`),
//! carried by edge-localized states. Supporting both edge families
//! demonstrates that the tight-binding machinery is not hard-wired to one
//! orientation.
//!
//! Geometry (canonical zigzag coordinates, transport along x with period
//! `a = √3·a_cc`): chain `j ∈ 0..N` contributes an A atom at
//! `(x₀ + (j mod 2)·a/2, 1.5j·a_cc)` and a B atom half a period along x
//! and `a_cc/2` up; vertical bonds stitch consecutive chains. Every edge
//! atom is two-coordinated — the clean zigzag termination.

use crate::error::LatticeError;
use gnr_num::consts::{A_CC, NM, T_HOPPING};
use gnr_num::{c64, CMatrix};

/// A zigzag graphene nanoribbon with `N` zigzag chains across the width.
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub struct ZGnr {
    n: usize,
}

impl ZGnr {
    /// Creates a ribbon descriptor for `n ≥ 2` zigzag chains.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::IndexTooSmall`] for `n < 2`.
    pub fn new(n: usize) -> Result<Self, LatticeError> {
        if n < 2 {
            return Err(LatticeError::IndexTooSmall { n });
        }
        Ok(ZGnr { n })
    }

    /// Number of zigzag chains `N`.
    pub fn index(&self) -> usize {
        self.n
    }

    /// Atoms per translational cell (`2N`).
    pub fn atoms_per_cell(&self) -> usize {
        2 * self.n
    }

    /// Translational period along transport, `√3·a_cc` \[m\].
    pub fn period_m(&self) -> f64 {
        3f64.sqrt() * A_CC
    }

    /// Ribbon width `(1.5·N − 1)·a_cc` \[m\].
    pub fn width_m(&self) -> f64 {
        (1.5 * self.n as f64 - 1.0) * A_CC
    }

    /// Ribbon width in nanometres.
    pub fn width_nm(&self) -> f64 {
        self.width_m() / NM
    }

    /// Atom coordinates of one cell, `(x, y)` in units of metres with
    /// `x ∈ [0, a)`: A then B for each chain, chain-major.
    fn cell_sites(&self) -> Vec<(f64, f64)> {
        let a = self.period_m();
        let mut sites = Vec::with_capacity(self.atoms_per_cell());
        for j in 0..self.n {
            let x_a = (j % 2) as f64 * a / 2.0;
            let y_a = 1.5 * j as f64 * A_CC;
            // B sits half a period along x (wrapped into the cell) and
            // a_cc/2 above.
            let x_b = (x_a + a / 2.0) % a;
            let y_b = y_a + 0.5 * A_CC;
            sites.push((x_a, y_a));
            sites.push((x_b, y_b));
        }
        sites
    }

    /// Bloch blocks `(H00, H01)`: intra-cell Hamiltonian and coupling to
    /// the next cell along transport, in eV (pz on-site at zero, plain
    /// hopping `t = 2.7 eV`; the Son–Cohen–Louie edge relaxation is
    /// specific to armchair edge dimers and does not apply here).
    pub fn unit_cell_hamiltonian(&self) -> (CMatrix, CMatrix) {
        let a = self.period_m();
        let sites = self.cell_sites();
        let m = sites.len();
        let mut h00 = CMatrix::zeros(m, m);
        let mut h01 = CMatrix::zeros(m, m);
        let t = c64(-T_HOPPING, 0.0);
        let tol = 0.05 * A_CC;
        for (i, &(xi, yi)) in sites.iter().enumerate() {
            for (j, &(xj, yj)) in sites.iter().enumerate() {
                // Same cell.
                if j > i {
                    let d = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
                    if (d - A_CC).abs() < tol {
                        h00.set(i, j, t);
                        h00.set(j, i, t);
                    }
                }
                // Neighbour cell: j displaced by +a along x.
                let d = ((xi - (xj + a)).powi(2) + (yi - yj).powi(2)).sqrt();
                if (d - A_CC).abs() < tol {
                    h01.set(i, j, t);
                }
            }
        }
        (h00, h01)
    }

    /// Band structure on `k_points` samples of `k ∈ [0, π]` (units of the
    /// inverse period): returns `bands[b][ik]` in eV, sorted per k.
    ///
    /// # Errors
    ///
    /// Returns [`LatticeError::BandSolve`] on eigensolver failure.
    pub fn band_structure(&self, k_points: usize) -> Result<Vec<Vec<f64>>, LatticeError> {
        let k_points = k_points.max(2);
        let (h00, h01) = self.unit_cell_hamiltonian();
        let h10 = h01.adjoint();
        let m = self.atoms_per_cell();
        let mut bands = vec![Vec::with_capacity(k_points); m];
        for ik in 0..k_points {
            let kk = std::f64::consts::PI * ik as f64 / (k_points - 1) as f64;
            let phase = c64(kk.cos(), kk.sin());
            let hk = &(&h00 + &h01.scale(phase)) + &h10.scale(phase.conj());
            let (evals, _) = hk.herm_eigen()?;
            for (b, e) in evals.into_iter().enumerate() {
                bands[b].push(e);
            }
        }
        Ok(bands)
    }

    /// Band gap in eV (≈ 0 for all zigzag ribbons: the Nakada result).
    ///
    /// # Errors
    ///
    /// Propagates band-solve failures.
    pub fn gap(&self, k_points: usize) -> Result<f64, LatticeError> {
        let bands = self.band_structure(k_points)?;
        let ec = bands
            .iter()
            .flatten()
            .copied()
            .filter(|&e| e > 0.0)
            .fold(f64::INFINITY, f64::min);
        let ev = bands
            .iter()
            .flatten()
            .copied()
            .filter(|&e| e <= 0.0)
            .fold(f64::NEG_INFINITY, f64::max);
        // A numerically exact zero eigenvalue counts as both edges closing.
        let near_zero = bands.iter().flatten().any(|&e| e.abs() < 1e-9);
        if near_zero {
            Ok(0.0)
        } else {
            Ok(ec - ev)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_validation() {
        assert!(ZGnr::new(1).is_err());
        assert!(ZGnr::new(2).is_ok());
        assert_eq!(ZGnr::new(8).unwrap().atoms_per_cell(), 16);
    }

    #[test]
    fn hamiltonian_blocks_well_formed() {
        let z = ZGnr::new(6).unwrap();
        let (h00, h01) = z.unit_cell_hamiltonian();
        assert!(h00.hermiticity_defect() < 1e-14);
        assert!(h01.norm_fro() > 0.0, "cells must couple");
        // Every atom has 2 (edge) or 3 (bulk) bonds in total.
        let m = z.atoms_per_cell();
        let mut two_coordinated = 0;
        for i in 0..m {
            let mut bonds = 0.0;
            for j in 0..m {
                bonds += h00.get(i, j).norm() + h01.get(i, j).norm() + h01.get(j, i).norm();
            }
            let nb = bonds / T_HOPPING;
            assert!(
                (nb - 2.0).abs() < 1e-9 || (nb - 3.0).abs() < 1e-9,
                "atom {i}: {nb} bonds"
            );
            if (nb - 2.0).abs() < 1e-9 {
                two_coordinated += 1;
            }
        }
        // Exactly one two-coordinated atom per edge per cell.
        assert_eq!(two_coordinated, 2, "clean zigzag edges");
    }

    /// Nakada et al. (the paper's ref. [12]): zigzag ribbons are metallic
    /// — the gap closes for every width, in sharp contrast to the
    /// armchair family.
    #[test]
    fn zigzag_ribbons_are_metallic() {
        for n in [2usize, 4, 6, 8, 11] {
            let gap = ZGnr::new(n).unwrap().gap(64).unwrap();
            assert!(gap < 0.05, "N={n}: gap {gap} eV should vanish");
        }
        // Armchair contrast: N=12 A-GNR is semiconducting.
        let a_gap = crate::AGnr::new(12)
            .unwrap()
            .band_structure(64)
            .unwrap()
            .gap();
        assert!(a_gap > 0.4);
    }

    /// The hallmark zigzag feature: partially flat bands pinned to E = 0
    /// near the zone boundary (edge states).
    #[test]
    fn flat_edge_bands_at_zone_boundary() {
        let z = ZGnr::new(8).unwrap();
        let bands = z.band_structure(96).unwrap();
        let m = z.atoms_per_cell();
        // The two bands adjacent to E=0 (indices m/2-1 and m/2).
        let lower = &bands[m / 2 - 1];
        let upper = &bands[m / 2];
        // At the zone boundary (k = pi) both must sit at E ~ 0.
        assert!(
            lower.last().unwrap().abs() < 0.02,
            "{}",
            lower.last().unwrap()
        );
        assert!(upper.last().unwrap().abs() < 0.02);
        // Flatness over the last quarter of the zone: |E| stays tiny
        // (the edge-state region k in (2pi/3, pi)).
        let quarter = lower.len() * 3 / 4;
        for (l, u) in lower[quarter..].iter().zip(&upper[quarter..]) {
            assert!(l.abs() < 0.2 && u.abs() < 0.2, "flat band: {l} {u}");
        }
        // But the same bands are dispersive at the zone centre.
        let lower_width = lower.iter().fold(0.0f64, |mx, &e| mx.max(e.abs()));
        assert!(
            lower_width > 0.5,
            "band disperses away from k=pi: {lower_width}"
        );
    }

    /// Flat-band bandwidth shrinks as the ribbon widens (edge states on
    /// opposite edges decouple).
    #[test]
    fn edge_band_flattens_with_width() {
        let flatness = |n: usize| -> f64 {
            let z = ZGnr::new(n).unwrap();
            let bands = z.band_structure(96).unwrap();
            let m = z.atoms_per_cell();
            let band = &bands[m / 2];
            // Max |E| over the edge-state region k in (3pi/4, pi).
            let start = band.len() * 3 / 4;
            band[start..].iter().fold(0.0f64, |mx, &e| mx.max(e.abs()))
        };
        let narrow = flatness(4);
        let wide = flatness(12);
        assert!(
            wide < narrow,
            "wider ribbon has flatter edge band: {wide} vs {narrow}"
        );
    }

    #[test]
    fn geometry_scales() {
        let z4 = ZGnr::new(4).unwrap();
        let z8 = ZGnr::new(8).unwrap();
        assert!(z8.width_nm() > 2.0 * z4.width_nm() * 0.9);
        assert!((z4.period_m() - 3f64.sqrt() * A_CC).abs() < 1e-20);
    }
}
