//! Explicit atom coordinates and neighbour graph of a finite A-GNR segment.
//!
//! The honeycomb lattice is generated in the "armchair orientation":
//! transport along x, width along y. Dimer line `i` sits at
//! `y = i·(√3/2)·a_cc`; within one `3·a_cc` period, even dimer lines carry
//! atoms at `x ∈ {0, a_cc}` and odd lines at `x ∈ {1.5·a_cc, 2.5·a_cc}`.
//! Nearest-neighbour bonds are recovered by a distance criterion, which
//! keeps the construction independent of index bookkeeping errors.

use crate::AGnr;
use gnr_num::consts::A_CC;

/// A carbon atom site in the ribbon, with coordinates in metres.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Atom {
    /// Transport coordinate \[m\].
    pub x: f64,
    /// Width coordinate \[m\].
    pub y: f64,
    /// Dimer-line index (0 at one edge, N−1 at the other).
    pub row: usize,
    /// Unit-cell index along the transport direction.
    pub cell: usize,
}

/// A bond between two atoms, annotated with its hopping scale factor
/// (1.0 for bulk bonds, [`gnr_num::consts::EDGE_BOND_FACTOR`] for relaxed
/// edge dimer bonds).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bond {
    /// First atom index.
    pub a: usize,
    /// Second atom index (`a < b` always).
    pub b: usize,
    /// Multiplier applied to the nearest-neighbour hopping energy.
    pub scale: f64,
}

/// Atom coordinates and nearest-neighbour bonds of a finite ribbon segment
/// of `cells` unit cells (length `cells · 3·a_cc`).
#[derive(Clone, Debug)]
pub struct RibbonLattice {
    gnr: AGnr,
    cells: usize,
    atoms: Vec<Atom>,
    bonds: Vec<Bond>,
}

impl RibbonLattice {
    /// Generates the segment geometry. Atoms are ordered cell-major so the
    /// slice `[cell·2N, (cell+1)·2N)` is exactly one RGF layer.
    ///
    /// # Panics
    ///
    /// Panics if `cells == 0`; construct through
    /// [`DeviceHamiltonian`](crate::DeviceHamiltonian) for checked building.
    pub fn new(gnr: AGnr, cells: usize) -> Self {
        assert!(cells > 0, "ribbon segment needs at least one cell");
        let n = gnr.index();
        let mut atoms = Vec::with_capacity(2 * n * cells);
        for cell in 0..cells {
            let x0 = cell as f64 * 3.0 * A_CC;
            // Cell-local atom order: for each row pair of x-offsets, row-major.
            for row in 0..n {
                let y = row as f64 * 3f64.sqrt() / 2.0 * A_CC;
                let offsets = if row % 2 == 0 {
                    [0.0, A_CC]
                } else {
                    [1.5 * A_CC, 2.5 * A_CC]
                };
                for off in offsets {
                    atoms.push(Atom {
                        x: x0 + off,
                        y,
                        row,
                        cell,
                    });
                }
            }
        }
        let bonds = find_bonds(&atoms);
        RibbonLattice {
            gnr,
            cells,
            atoms,
            bonds,
        }
    }

    /// The ribbon descriptor.
    pub fn gnr(&self) -> AGnr {
        self.gnr
    }

    /// Number of unit cells in the segment.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// All atoms, cell-major.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// All nearest-neighbour bonds with their hopping scale factors.
    pub fn bonds(&self) -> &[Bond] {
        &self.bonds
    }

    /// Total atom count (`2N · cells`).
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Segment length along transport \[m\].
    pub fn length_m(&self) -> f64 {
        self.cells as f64 * self.gnr.period_m()
    }

    /// Coordination number (bond count) of every atom; 3 in the bulk,
    /// 2 on the armchair edges.
    pub fn coordination(&self) -> Vec<usize> {
        let mut coord = vec![0usize; self.atoms.len()];
        for b in &self.bonds {
            coord[b.a] += 1;
            coord[b.b] += 1;
        }
        coord
    }
}

/// Distance-based nearest-neighbour search with edge-bond classification.
///
/// A bond is an "edge dimer" bond when both endpoints lie on an edge dimer
/// line (row 0 or row N−1) — those bonds are parallel to the edge and get
/// the Son–Cohen–Louie strengthening.
fn find_bonds(atoms: &[Atom]) -> Vec<Bond> {
    use gnr_num::consts::EDGE_BOND_FACTOR;
    let tol = 0.05 * A_CC;
    let max_row = atoms.iter().map(|a| a.row).max().unwrap_or(0);
    let mut bonds = Vec::new();
    // Bucket atoms by cell for O(atoms) search: bonds never span more than
    // one cell boundary.
    let max_cell = atoms.iter().map(|a| a.cell).max().unwrap_or(0);
    let mut by_cell: Vec<Vec<usize>> = vec![Vec::new(); max_cell + 1];
    for (i, a) in atoms.iter().enumerate() {
        by_cell[a.cell].push(i);
    }
    for (i, a) in atoms.iter().enumerate() {
        let neighbor_cells = [
            Some(a.cell),
            a.cell.checked_add(1).filter(|&c| c <= max_cell),
        ];
        for cell in neighbor_cells.into_iter().flatten() {
            for &j in &by_cell[cell] {
                if j <= i {
                    continue;
                }
                let b = &atoms[j];
                let d = ((a.x - b.x).powi(2) + (a.y - b.y).powi(2)).sqrt();
                if (d - A_CC).abs() < tol {
                    let edge = (a.row == 0 && b.row == 0) || (a.row == max_row && b.row == max_row);
                    bonds.push(Bond {
                        a: i,
                        b: j,
                        scale: if edge { EDGE_BOND_FACTOR } else { 1.0 },
                    });
                }
            }
        }
    }
    bonds
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnr_num::consts::EDGE_BOND_FACTOR;

    fn lat(n: usize, cells: usize) -> RibbonLattice {
        RibbonLattice::new(AGnr::new(n).unwrap(), cells)
    }

    #[test]
    fn atom_count_is_2n_per_cell() {
        let l = lat(9, 4);
        assert_eq!(l.atom_count(), 2 * 9 * 4);
    }

    #[test]
    fn coordination_is_two_or_three() {
        let l = lat(12, 6);
        let coord = l.coordination();
        assert!(coord.iter().all(|&c| (1..=3).contains(&c)));
        // Interior-cell, interior-row atoms are 3-coordinated.
        let n = 12;
        for (i, a) in l.atoms().iter().enumerate() {
            if a.cell > 0 && a.cell < 5 && a.row > 0 && a.row < n - 1 {
                assert_eq!(coord[i], 3, "atom {i} at row {} cell {}", a.row, a.cell);
            }
        }
    }

    #[test]
    fn edge_atoms_in_interior_cells_are_two_coordinated() {
        let l = lat(9, 5);
        let coord = l.coordination();
        for (i, a) in l.atoms().iter().enumerate() {
            if (a.row == 0 || a.row == 8) && a.cell >= 1 && a.cell <= 3 {
                assert_eq!(coord[i], 2, "edge atom {i}");
            }
        }
    }

    #[test]
    fn bulk_bond_count() {
        // Infinite ribbon: 3 bonds per atom / 2 = 3N bonds per cell, minus
        // the N-1... easier invariant: total bonds = (sum coordination)/2.
        let l = lat(12, 8);
        let coord = l.coordination();
        let total: usize = coord.iter().sum();
        assert_eq!(l.bonds().len() * 2, total);
    }

    #[test]
    fn edge_bonds_are_scaled() {
        let l = lat(9, 4);
        let edge_bonds: Vec<_> = l
            .bonds()
            .iter()
            .filter(|b| b.scale == EDGE_BOND_FACTOR)
            .collect();
        // Every cell contributes one edge dimer bond per edge.
        assert_eq!(edge_bonds.len(), 2 * 4);
        for b in edge_bonds {
            let (ra, rb) = (l.atoms()[b.a].row, l.atoms()[b.b].row);
            assert!(ra == rb && (ra == 0 || ra == 8));
        }
    }

    #[test]
    fn bond_lengths_all_acc() {
        let l = lat(15, 3);
        for b in l.bonds() {
            let (p, q) = (l.atoms()[b.a], l.atoms()[b.b]);
            let d = ((p.x - q.x).powi(2) + (p.y - q.y).powi(2)).sqrt();
            assert!((d - A_CC).abs() < 1e-12);
        }
    }

    #[test]
    fn length_matches_cells() {
        let l = lat(9, 35);
        // 35 cells * 0.426 nm = 14.9 nm: the paper's "15 nm" channel.
        assert!((l.length_m() * 1e9 - 14.9).abs() < 0.05);
    }

    #[test]
    fn atoms_ordered_cell_major() {
        let l = lat(9, 3);
        let n2 = 18;
        for (i, a) in l.atoms().iter().enumerate() {
            assert_eq!(a.cell, i / n2);
        }
    }
}
