//! Property-based tests of the lattice and Hamiltonian invariants,
//! driven by the in-house seeded RNG (deterministic across runs).

use gnr_lattice::{unit_cell_hamiltonian, AGnr, DeviceHamiltonian};
use gnr_num::rng::Rng;

/// Every valid index yields a Hermitian Bloch Hamiltonian at every k.
#[test]
fn bloch_hamiltonian_hermitian() {
    let mut rng = Rng::seed_from_u64(0x4c41_5401);
    for _ in 0..12 {
        let n = 3 + rng.below(13);
        let ik = rng.below(8);
        let gnr = AGnr::new(n).expect("valid index");
        let (h00, h01) = unit_cell_hamiltonian(gnr);
        let k = std::f64::consts::PI * ik as f64 / 7.0;
        let phase = gnr_num::c64(k.cos(), k.sin());
        let hk = &(&h00 + &h01.scale(phase)) + &h01.adjoint().scale(phase.conj());
        assert!(hk.hermiticity_defect() < 1e-12);
    }
}

/// Device Hamiltonians are Hermitian for any potential profile.
#[test]
fn device_hamiltonian_hermitian() {
    let mut rng = Rng::seed_from_u64(0x4c41_5402);
    for _ in 0..12 {
        let n = 3 + rng.below(7);
        let cells = 1 + rng.below(4);
        let gnr = AGnr::new(n).expect("valid index");
        let m = gnr.atoms_per_cell();
        let pot: Vec<f64> = (0..m * cells).map(|_| rng.uniform_in(-0.3, 0.3)).collect();
        let h = DeviceHamiltonian::new(gnr, cells, &pot).expect("builds");
        assert!(h.to_dense().hermiticity_defect() < 1e-12);
    }
}

/// The spectrum is bounded by the maximum coordination times the
/// strongest bond: |E| <= 3 * 1.12 * t.
#[test]
fn spectrum_bounded_by_bandwidth() {
    for n in 3usize..14 {
        let gnr = AGnr::new(n).expect("valid index");
        let bands = gnr.band_structure(24).expect("solves");
        let bound = 3.0 * 1.12 * gnr_num::consts::T_HOPPING + 1e-9;
        for band in bands.bands() {
            for &e in band {
                assert!(e.abs() <= bound, "E = {e} exceeds bandwidth bound");
            }
        }
    }
}

/// Uniform potential shifts translate the whole spectrum: the layer
/// potential readback must match the applied shift.
#[test]
fn potential_readback() {
    let mut rng = Rng::seed_from_u64(0x4c41_5403);
    for _ in 0..12 {
        let shift = rng.uniform_in(-0.5, 0.5);
        let gnr = AGnr::new(6).expect("valid index");
        let m = gnr.atoms_per_cell();
        let pot = vec![shift; m * 3];
        let h = DeviceHamiltonian::new(gnr, 3, &pot).expect("builds");
        for l in 0..3 {
            assert!((h.layer_potential_ev(l) - shift).abs() < 1e-12);
        }
    }
}

/// Width and atom counts scale linearly with the index.
#[test]
fn geometry_scaling() {
    for n in 3usize..20 {
        let gnr = AGnr::new(n).expect("valid index");
        assert_eq!(gnr.atoms_per_cell(), 2 * n);
        let lat = gnr.lattice(2);
        assert_eq!(lat.atom_count(), 4 * n);
        // Bond count: interior atoms have 3 neighbours, edges 2.
        let coord = lat.coordination();
        assert!(coord.iter().all(|&c| (1..=3).contains(&c)));
    }
}
