//! Property-based tests of the lattice and Hamiltonian invariants.

use gnr_lattice::{unit_cell_hamiltonian, AGnr, DeviceHamiltonian};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every valid index yields a Hermitian Bloch Hamiltonian at every k.
    #[test]
    fn bloch_hamiltonian_hermitian(n in 3usize..16, ik in 0usize..8) {
        let gnr = AGnr::new(n).expect("valid index");
        let (h00, h01) = unit_cell_hamiltonian(gnr);
        let k = std::f64::consts::PI * ik as f64 / 7.0;
        let phase = gnr_num::c64(k.cos(), k.sin());
        let hk = &(&h00 + &h01.scale(phase)) + &h01.adjoint().scale(phase.conj());
        prop_assert!(hk.hermiticity_defect() < 1e-12);
    }

    /// Device Hamiltonians are Hermitian for any potential profile.
    #[test]
    fn device_hamiltonian_hermitian(
        n in 3usize..10,
        cells in 1usize..5,
        seed in 0u64..1000,
    ) {
        let gnr = AGnr::new(n).expect("valid index");
        let m = gnr.atoms_per_cell();
        // Deterministic pseudo-random potential from the seed.
        let pot: Vec<f64> = (0..m * cells)
            .map(|i| ((seed as f64 + i as f64) * 12.9898).sin() * 0.3)
            .collect();
        let h = DeviceHamiltonian::new(gnr, cells, &pot).expect("builds");
        prop_assert!(h.to_dense().hermiticity_defect() < 1e-12);
    }

    /// The spectrum is bounded by the maximum coordination times the
    /// strongest bond: |E| <= 3 * 1.12 * t.
    #[test]
    fn spectrum_bounded_by_bandwidth(n in 3usize..14) {
        let gnr = AGnr::new(n).expect("valid index");
        let bands = gnr.band_structure(24).expect("solves");
        let bound = 3.0 * 1.12 * gnr_num::consts::T_HOPPING + 1e-9;
        for band in bands.bands() {
            for &e in band {
                prop_assert!(e.abs() <= bound, "E = {e} exceeds bandwidth bound");
            }
        }
    }

    /// Uniform potential shifts translate the whole spectrum: the layer
    /// potential readback must match the applied shift.
    #[test]
    fn potential_readback(shift in -0.5f64..0.5) {
        let gnr = AGnr::new(6).expect("valid index");
        let m = gnr.atoms_per_cell();
        let pot = vec![shift; m * 3];
        let h = DeviceHamiltonian::new(gnr, 3, &pot).expect("builds");
        for l in 0..3 {
            prop_assert!((h.layer_potential_ev(l) - shift).abs() < 1e-12);
        }
    }

    /// Width and atom counts scale linearly with the index.
    #[test]
    fn geometry_scaling(n in 3usize..20) {
        let gnr = AGnr::new(n).expect("valid index");
        prop_assert_eq!(gnr.atoms_per_cell(), 2 * n);
        let lat = gnr.lattice(2);
        prop_assert_eq!(lat.atom_count(), 4 * n);
        // Bond count: interior atoms have 3 neighbours, edges 2.
        let coord = lat.coordination();
        prop_assert!(coord.iter().all(|&c| c >= 1 && c <= 3));
    }
}
