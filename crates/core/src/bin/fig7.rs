//! Regenerates paper Fig. 7: latch butterfly curves for the nominal
//! device, a single affected GNR, and all GNRs affected by the worst-case
//! combination (n: N=9 with +q, p: N=18 with −q), plus the latch static
//! power comparison of §5.3.

use gnr_num::par::ExecCtx;
use gnrfet_explore::latch::{latch_study, render_butterfly};
use gnrfet_explore::report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut lib = report::standard_library("fig7 — latch butterfly curves");
    let vdd = 0.4;
    let study = latch_study(&ExecCtx::from_env(), &mut lib, vdd)?;
    let nominal_static = study.cases[0].static_w;
    for case in &study.cases {
        println!(
            "\n--- {} ---\nSNM = {:.4} V (lobes {:.4}/{:.4}), static power = {} ({:.1}x nominal)",
            case.label,
            case.margins.snm(),
            case.margins.upper_v,
            case.margins.lower_v,
            report::eng(case.static_w, "W"),
            case.static_w / nominal_static
        );
        println!("{}", render_butterfly(case, vdd, 44));
    }
    println!("paper: worst case collapses one eye to a near-zero noise margin and");
    println!("raises latch static power by over 5x — the dense-memory concern of §5.3.");
    Ok(())
}
