//! Extension experiment: sensitivity of the FO4 inverter to the extrinsic
//! parasitics the paper's Fig. 3(a) annotates — contact resistance
//! `R_S = R_D ∈ [1, 100] kΩ` (nominal 10 kΩ) and junction capacitance
//! `C_GS,e = C_GD,e ∈ [0.01, 0.1] aF/nm × 40 nm`. The paper fixes the
//! nominal values; this sweep shows how much headroom the contact
//! technology actually controls.

use gnr_spice::builders::{ExtrinsicParasitics, InverterCell};
use gnr_spice::measure::{butterfly_snm, fo4_metrics_for_cell, inverter_vtc};
use gnrfet_explore::devices::DeviceVariant;
use gnrfet_explore::report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut lib = report::standard_library("parasitics — contact R / junction C sensitivity");
    let vdd = 0.4;
    let shift = lib.min_leakage_shift(vdd)?;
    let n = lib
        .ntype_table(&gnr_num::par::ExecCtx::from_env(), DeviceVariant::nominal())?
        .with_vg_shift(shift);
    let p = n.mirrored();

    println!("\ncontact resistance sweep (C_e at nominal 0.05 aF/nm):");
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>10}",
        "R (kOhm)", "delay (ps)", "static (uW)", "energy (fJ)", "SNM (V)"
    );
    for r_kohm in [1.0, 3.0, 10.0, 30.0, 100.0] {
        let par = ExtrinsicParasitics {
            r_s: r_kohm * 1e3,
            r_d: r_kohm * 1e3,
            ..ExtrinsicParasitics::nominal()
        };
        let cell = InverterCell::new(&n, &p, &par)?;
        let m = fo4_metrics_for_cell(&cell, vdd)?;
        let vtc = inverter_vtc(&cell, vdd, 33)?;
        let snm = butterfly_snm(&vtc, &vtc, vdd).snm();
        println!(
            "{:>10.0} {:>12.2} {:>14.4} {:>14.4} {:>10.3}",
            r_kohm,
            m.delay_s * 1e12,
            m.static_power_w * 1e6,
            m.energy_per_cycle_j * 1e15,
            snm
        );
    }

    println!("\njunction capacitance sweep (R at nominal 10 kOhm):");
    println!(
        "{:>12} {:>12} {:>14} {:>14}",
        "C (aF/nm)", "delay (ps)", "energy (fJ)", "EDP (aJ-ps)"
    );
    for c_af_per_nm in [0.01, 0.02, 0.05, 0.08, 0.1] {
        let c_e = c_af_per_nm * 1e-18 * 40.0;
        let par = ExtrinsicParasitics {
            c_gs_e: c_e,
            c_gd_e: c_e,
            ..ExtrinsicParasitics::nominal()
        };
        let cell = InverterCell::new(&n, &p, &par)?;
        let m = fo4_metrics_for_cell(&cell, vdd)?;
        println!(
            "{:>12.2} {:>12.2} {:>14.4} {:>14.2}",
            c_af_per_nm,
            m.delay_s * 1e12,
            m.energy_per_cycle_j * 1e15,
            m.energy_per_cycle_j / 2.0 * m.delay_s * 1e30
        );
    }
    println!("\nat the paper's nominal point the junction capacitance dominates the");
    println!("delay and EDP (both ~3x across the annotated C range), while contact");
    println!("resistance only bites at the 100 kOhm end of its range, where it");
    println!("degrades delay and switching energy by ~50% — the contact-technology");
    println!("\"engineering challenge\" the paper's conclusion assigns to the device");
    println!("community.");
    Ok(())
}
