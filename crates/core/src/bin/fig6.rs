//! Regenerates paper Fig. 6: Monte Carlo distributions of frequency,
//! dynamic power, and static power for the 15-stage FO4 ring oscillator
//! with per-inverter width (N = 9/12/15) and charge (−q/0/+q) variations
//! drawn from a discretized normal distribution.

use gnr_num::par::ExecCtx;
use gnrfet_explore::monte_carlo::{ring_oscillator_monte_carlo, MonteCarloResult};
use gnrfet_explore::report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut lib = report::standard_library("fig6 — Monte Carlo ring-oscillator study");
    let vdd = 0.4;
    let samples = match std::env::var("GNRLAB_MC_SAMPLES") {
        Ok(s) => s.parse().unwrap_or(10_000),
        Err(_) => 10_000,
    };
    println!("characterizing the 81-configuration stage universe...");
    let ctx = ExecCtx::from_env();
    let result = ring_oscillator_monte_carlo(&ctx, &mut lib, vdd, 15, samples, 0x5eed)?;

    if result.stalled_samples > 0 {
        println!(
            "{} of {samples} rings contained a non-functional stage and stalled",
            result.stalled_samples
        );
    }
    let f = result.frequency_summary()?;
    let d = result.dynamic_summary()?;
    let s = result.static_summary()?;
    println!("\n{samples} samples at V_DD = {vdd} V:\n");
    println!(
        "frequency: nominal {:.3} GHz, mean {:.3} GHz ({:+.1}% vs nominal), sigma {:.3} GHz",
        result.nominal_frequency_hz / 1e9,
        f.mean / 1e9,
        100.0 * (f.mean / result.nominal_frequency_hz - 1.0),
        f.std_dev / 1e9
    );
    println!("   paper: mean frequency decreases by ~10% from nominal");
    println!(
        "dynamic P: nominal {:.3} uW, mean {:.3} uW ({:+.1}%), sigma {:.3} uW",
        result.nominal_dynamic_w * 1e6,
        d.mean * 1e6,
        100.0 * (d.mean / result.nominal_dynamic_w - 1.0),
        d.std_dev * 1e6
    );
    println!("   paper: mean dynamic power remains ~unchanged");
    println!(
        "static  P: nominal {:.3} uW, mean {:.3} uW ({:+.1}%), sigma {:.3} uW",
        result.nominal_static_w * 1e6,
        s.mean * 1e6,
        100.0 * (s.mean / result.nominal_static_w - 1.0),
        s.std_dev * 1e6
    );
    println!("   paper: mean static power increases by ~23% from nominal\n");

    let freq_ghz: Vec<f64> = result.frequency_hz.iter().map(|v| v / 1e9).collect();
    let dyn_uw: Vec<f64> = result.dynamic_w.iter().map(|v| v * 1e6).collect();
    let stat_uw: Vec<f64> = result.static_w.iter().map(|v| v * 1e6).collect();
    println!("frequency histogram (GHz):");
    println!("{}", MonteCarloResult::histogram(&freq_ghz, 18)?.ascii(46));
    println!("dynamic power histogram (uW):");
    println!("{}", MonteCarloResult::histogram(&dyn_uw, 18)?.ascii(46));
    println!("static power histogram (uW):");
    println!("{}", MonteCarloResult::histogram(&stat_uw, 18)?.ascii(46));
    Ok(())
}
