//! Regenerates paper Fig. 6: Monte Carlo distributions of frequency,
//! dynamic power, and static power for the 15-stage FO4 ring oscillator
//! with per-inverter width (N = 9/12/15) and charge (−q/0/+q) variations
//! drawn from a discretized normal distribution.
//!
//! Runs as a streaming [`JobRequest::McSweep`] through the
//! characterization service: chunks print as they land, an interrupted
//! run checkpoints, and re-running resumes by seed range. Device tables
//! come from the shared on-disk content-addressed cache, so repeated
//! invocations skip straight to the sampling.

use gnrfet_explore::monte_carlo::MonteCarloResult;
use gnrfet_explore::report;
use gnrfet_explore::service::JobRequest;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut service = report::standard_service("fig6 — Monte Carlo ring-oscillator study");
    let vdd = 0.4;
    let samples = match std::env::var("GNRLAB_MC_SAMPLES") {
        Ok(s) => s.parse().unwrap_or(10_000),
        Err(_) => 10_000,
    };
    println!("characterizing the 81-configuration stage universe...");
    std::fs::create_dir_all(report::CACHE_DIR)?;
    let request = JobRequest::mc_sweep(vdd, 15, samples, 0x5eed)
        .with_checkpoint(format!("{}/fig6-mc.json", report::CACHE_DIR));
    let mut delivered = 0usize;
    let response = service.submit_streaming(request, &mut |chunk| {
        delivered += chunk.totals.len();
        if chunk.restored {
            println!("  resumed {delivered} checkpointed samples (seed range restored)");
        } else if delivered % 2048 < chunk.totals.len() || delivered == samples {
            println!("  {delivered}/{samples} samples");
        }
    })?;
    let outcome = response.mc().expect("sweep jobs return a sweep payload");
    if let Some(stop) = &outcome.interrupted {
        println!(
            "interrupted ({stop}) after {}/{} samples — rerun to resume",
            outcome.completed_samples, outcome.requested_samples
        );
    }
    let result = &outcome.result;

    if result.stalled_samples > 0 {
        println!(
            "{} of {samples} rings contained a non-functional stage and stalled",
            result.stalled_samples
        );
    }
    let f = result.frequency_summary()?;
    let d = result.dynamic_summary()?;
    let s = result.static_summary()?;
    println!("\n{samples} samples at V_DD = {vdd} V:\n");
    println!(
        "frequency: nominal {:.3} GHz, mean {:.3} GHz ({:+.1}% vs nominal), sigma {:.3} GHz",
        result.nominal_frequency_hz / 1e9,
        f.mean / 1e9,
        100.0 * (f.mean / result.nominal_frequency_hz - 1.0),
        f.std_dev / 1e9
    );
    println!("   paper: mean frequency decreases by ~10% from nominal");
    println!(
        "dynamic P: nominal {:.3} uW, mean {:.3} uW ({:+.1}%), sigma {:.3} uW",
        result.nominal_dynamic_w * 1e6,
        d.mean * 1e6,
        100.0 * (d.mean / result.nominal_dynamic_w - 1.0),
        d.std_dev * 1e6
    );
    println!("   paper: mean dynamic power remains ~unchanged");
    println!(
        "static  P: nominal {:.3} uW, mean {:.3} uW ({:+.1}%), sigma {:.3} uW",
        result.nominal_static_w * 1e6,
        s.mean * 1e6,
        100.0 * (s.mean / result.nominal_static_w - 1.0),
        s.std_dev * 1e6
    );
    println!("   paper: mean static power increases by ~23% from nominal\n");

    let freq_ghz: Vec<f64> = result.frequency_hz.iter().map(|v| v / 1e9).collect();
    let dyn_uw: Vec<f64> = result.dynamic_w.iter().map(|v| v * 1e6).collect();
    let stat_uw: Vec<f64> = result.static_w.iter().map(|v| v * 1e6).collect();
    println!("frequency histogram (GHz):");
    println!("{}", MonteCarloResult::histogram(&freq_ghz, 18)?.ascii(46));
    println!("dynamic power histogram (uW):");
    println!("{}", MonteCarloResult::histogram(&dyn_uw, 18)?.ascii(46));
    println!("static power histogram (uW):");
    println!("{}", MonteCarloResult::histogram(&stat_uw, 18)?.ascii(46));
    report::cache_summary(&response.telemetry);
    Ok(())
}
