//! Regenerates paper Table 1: frequency, EDP, and SNM of the 15-stage FO4
//! ring oscillator for GNRFETs at operating points A/B/C versus scaled
//! CMOS at the 22/32/45 nm nodes and V_DD ∈ {0.8, 0.6, 0.4} V.
//!
//! The design-space map runs as a [`JobRequest::EdpContour`] through the
//! characterization service; the CMOS rows share the service's
//! content-addressed table store, so each node/supply model card is
//! sampled once per run (and once ever, with the disk cache warm).

use gnrfet_explore::comparison::comparison_table;
use gnrfet_explore::report;
use gnrfet_explore::service::JobRequest;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut service = report::standard_service("table1 — GNRFET vs scaled CMOS");
    // Locate A/B/C on a modest design-space grid first.
    let vdd_axis: Vec<f64> = (0..8).map(|i| 0.18 + i as f64 * 0.07).collect();
    let vt_axis: Vec<f64> = (0..7).map(|i| 0.02 + i as f64 * 0.04).collect();
    let response = service.submit(JobRequest::edp_contour(vdd_axis, vt_axis, 15))?;
    let map = response.contour().expect("contour jobs return a map");
    let f_max = map.feasible().map(|p| p.frequency_hz).fold(0.0, f64::max);
    let f_target = (3e9f64).max(0.55 * f_max);
    let best_snm = map.feasible().map(|p| p.snm_v).fold(0.0, f64::max);
    let snm_floor = (0.15f64).min(0.75 * best_snm);
    let a = map
        .point_min_edp(f_target)
        .ok_or("frequency floor unreachable on the exploration grid")?;
    let b = map.point_min_edp_with_snm(f_target, snm_floor).unwrap_or(a);
    let c = map.point_same_edp_higher_vt(&b, 0.25).unwrap_or(b);
    let points = vec![
        (format!("GNRFET A (VDD={:.2},VT={:.2})", a.vdd, a.vt), a),
        (format!("GNRFET B (VDD={:.2},VT={:.2})", b.vdd, b.vt), b),
        (format!("GNRFET C (VDD={:.2},VT={:.2})", c.vdd, c.vt), c),
    ];
    let ctx = service.ctx().clone();
    let table = comparison_table(&ctx, service.library(), &points, 15)?;
    println!("\n{table}");
    println!("paper Table 1: GNRFET A/B/C at 3.3/3.4/2.5 GHz, EDP 22.7/27.6/36.8 fJ-ps,");
    println!("SNM 0.09/0.14/0.15 V; CMOS EDP 1129-6012 fJ-ps; advantage 40-168x.");
    Ok(())
}
