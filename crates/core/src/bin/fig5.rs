//! Regenerates paper Fig. 5: (a) conduction-band profile of the N=12
//! device with oxide charge impurities of −2q…+2q near the source, and
//! (b) the corresponding I-V curves — negative charges raise/thicken the
//! Schottky barrier, positive charges lower/thin it, asymmetrically.

use gnr_device::{ChargeImpurity, DeviceConfig, SbfetModel};
use gnrfet_explore::devices::Fidelity;
use gnrfet_explore::report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = Fidelity::from_env();
    println!("== gnrlab :: fig5 — charge-impurity effects on the N=12 GNRFET ==");
    println!("fidelity: {fidelity:?}");
    let cfg = match fidelity {
        Fidelity::Paper => DeviceConfig::paper_nominal(12)?,
        Fidelity::Fast => DeviceConfig::test_small(12)?,
    };
    let charges = [-2.0, -1.0, 0.0, 1.0, 2.0];
    let mut models = Vec::new();
    for q in charges {
        let model = if q == 0.0 {
            SbfetModel::new(&cfg)?
        } else {
            SbfetModel::with_impurities(&cfg, &[ChargeImpurity::near_source(q)])?
        };
        models.push((q, model));
    }

    // --- Fig 5(a): conduction band profiles at V_D = 0.5 V, V_G = 0.25 V ---
    println!("\nfig5a: conduction-band profile E_C(x), V_G = 0.25 V, V_D = 0.5 V");
    println!("(impurity at 2 nm from the source face, 0.4 nm above the ribbon)");
    for (q, model) in &models {
        let prof = model.conduction_band_profile(0.25, 0.5);
        let peak = prof
            .iter()
            .skip(1)
            .take(prof.len() / 2)
            .cloned()
            .fold((0.0, f64::MIN), |acc, p| if p.1 > acc.1 { p } else { acc });
        println!(
            "  q = {q:+.0}: source-half barrier peak {:.3} eV at x = {:.2} nm",
            peak.1, peak.0
        );
        let data: Vec<(f64, f64)> = prof.iter().step_by(2).copied().collect();
        println!(
            "{}",
            report::series(
                &format!("E_C(x) for impurity {q:+.0}q"),
                "x (nm)",
                "E_C (eV)",
                &data,
            )
        );
    }

    // --- Fig 5(b): I-V curves ---
    println!("fig5b: I_D vs V_G at V_D = 0.5 V");
    for (q, model) in &models {
        if *q != -2.0 && *q != 0.0 && *q != 2.0 {
            continue; // the paper plots -2q / ideal / +2q
        }
        let mut data = Vec::new();
        for i in 0..=32 {
            let vg = i as f64 * 0.025;
            data.push((vg, model.drain_current(vg, 0.5)?));
        }
        println!(
            "{}",
            report::series(
                &format!("I-V with impurity {q:+.0}q"),
                "V_G (V)",
                "I_D (A)",
                &data,
            )
        );
    }
    let ideal_on = models[2].1.drain_current(0.5, 0.5)?;
    let neg_on = models[0].1.drain_current(0.5, 0.5)?;
    let pos_on = models[4].1.drain_current(0.5, 0.5)?;
    println!("on-current (V_G = V_D = 0.5 V):");
    println!("  ideal: {}", report::eng(ideal_on, "A"));
    println!(
        "  -2q:   {} ({:.1}x smaller; paper: factor of ~6 smaller)",
        report::eng(neg_on, "A"),
        ideal_on / neg_on
    );
    println!(
        "  +2q:   {} ({:.2}x of ideal; paper: smaller deviation than -2q)",
        report::eng(pos_on, "A"),
        pos_on / ideal_on
    );
    Ok(())
}
