//! Extension experiment (beyond the paper's tables): edge-roughness
//! disorder, the defect mechanism the paper defers to its ref. [17] and
//! says "can be explored by readily extending the bottom-up simulation
//! framework presented here". This binary is that extension: ballistic
//! transmission statistics of rough ribbons versus roughness probability
//! and channel length, using the atomistic NEGF path.

use gnr_device::variation::EdgeRoughness;
use gnr_lattice::{AGnr, DeviceHamiltonian};
use gnr_negf::{Lead, RgfSolver};
use gnr_num::stats::summarize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== gnrlab :: roughness — edge-disorder transmission statistics ==");
    let gnr = AGnr::new(9)?;
    let bands = gnr.band_structure(96)?;
    let e_probe = bands.conduction_edge() + 0.15;
    println!("N=9 A-GNR, probing the first subband at E = {e_probe:.3} eV\n");
    let realizations = 12u64;

    println!("transmission vs roughness probability (12 cells ~ 5 nm):");
    println!(
        "{:>6} {:>10} {:>10} {:>10}",
        "p (%)", "mean T", "min T", "max T"
    );
    for p in [0.0, 0.02, 0.05, 0.10, 0.20] {
        let mut ts = Vec::new();
        for seed in 0..realizations {
            let mut h = DeviceHamiltonian::flat_band(gnr, 12)?;
            EdgeRoughness::new(p, seed).apply(&mut h, 12);
            let t = RgfSolver::new(&h, Lead::gnr_contact(), Lead::gnr_contact())
                .transmission(e_probe)?;
            ts.push(t);
        }
        let s = summarize(&ts)?;
        println!(
            "{:>6.0} {:>10.4} {:>10.4} {:>10.4}",
            p * 100.0,
            s.mean,
            s.min,
            s.max
        );
    }

    println!("\ntransmission vs channel length at p = 5% (localization):");
    println!("{:>8} {:>10}", "cells", "mean T");
    for cells in [6usize, 12, 18, 24] {
        let mut ts = Vec::new();
        for seed in 0..realizations {
            let mut h = DeviceHamiltonian::flat_band(gnr, cells)?;
            EdgeRoughness::new(0.05, seed).apply(&mut h, cells);
            let t = RgfSolver::new(&h, Lead::gnr_contact(), Lead::gnr_contact())
                .transmission(e_probe)?;
            ts.push(t);
        }
        let s = summarize(&ts)?;
        println!("{:>8} {:>10.4}", cells, s.mean);
    }
    println!("\nexpected physics (Yoon & Guo, APL 91, 073103): transmission");
    println!("degrades with roughness and decays with length (edge-disorder");
    println!("localization) — a third variability mechanism for the paper's");
    println!("framework beyond width variation and charge impurities.");
    Ok(())
}
