//! Regenerates paper Table 2: the effect of independent GNR-width
//! variations (N = 9/12/15/18) in the n- and p-GNRFET channels on FO4
//! inverter delay, static/dynamic power, and SNM, for both the one-of-four
//! and all-four array scenarios.

use gnr_num::par::ExecCtx;
use gnrfet_explore::report;
use gnrfet_explore::variability::{width_variation_table, Metric};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut lib = report::standard_library("table2 — GNR width variation");
    let vdd = 0.4;
    let table = width_variation_table(&ExecCtx::from_env(), &mut lib, vdd)?;
    println!(
        "\nnominal inverter (N=12 x4, V_DD = {vdd} V): delay {:.2} ps, static {:.4} uW, dynamic {:.4} uW, SNM {:.3} V\n",
        table.nominal.delay_s * 1e12,
        table.nominal.static_w * 1e6,
        table.nominal.dynamic_w * 1e6,
        table.nominal.snm_v
    );
    println!("{table}");
    for (metric, name, paper) in [
        (Metric::Delay, "delay", "+6..+77% worst case"),
        (
            Metric::StaticPower,
            "static power",
            "+313..+643% worst case",
        ),
        (
            Metric::DynamicPower,
            "dynamic power",
            "+37..+215% worst case",
        ),
        (Metric::Snm, "SNM", "-27..-80% worst case"),
    ] {
        let ((one_lo, one_hi), (all_lo, all_hi)) = table.delta_range(metric);
        println!(
            "{name:>14}: one-of-4 range {one_lo:+.0}%..{one_hi:+.0}%, all-4 range {all_lo:+.0}%..{all_hi:+.0}%   (paper: {paper})"
        );
    }
    Ok(())
}
