//! Regenerates paper Table 3: the effect of independent oxide charge
//! impurities (−2q…+2q) in the n- and p-GNRFET channels on FO4 inverter
//! delay, static/dynamic power, and SNM, for both array scenarios.

use gnr_num::par::ExecCtx;
use gnrfet_explore::report;
use gnrfet_explore::variability::{charge_impurity_table, Metric};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut lib = report::standard_library("table3 — oxide charge impurities");
    let vdd = 0.4;
    let table = charge_impurity_table(&ExecCtx::from_env(), &mut lib, vdd)?;
    println!(
        "\nnominal inverter (V_DD = {vdd} V): delay {:.2} ps, static {:.4} uW, dynamic {:.4} uW, SNM {:.3} V\n",
        table.nominal.delay_s * 1e12,
        table.nominal.static_w * 1e6,
        table.nominal.dynamic_w * 1e6,
        table.nominal.snm_v
    );
    println!("{table}");
    for (metric, name, paper) in [
        (
            Metric::Delay,
            "delay",
            "+8..+92% worst case (-2q on n, +2q on p)",
        ),
        (Metric::StaticPower, "static power", "+11..+37% worst case"),
        (Metric::DynamicPower, "dynamic power", "+5..+19% worst case"),
        (Metric::Snm, "SNM", "-14..-40% worst case"),
    ] {
        let ((one_lo, one_hi), (all_lo, all_hi)) = table.delta_range(metric);
        println!(
            "{name:>14}: one-of-4 range {one_lo:+.0}%..{one_hi:+.0}%, all-4 range {all_lo:+.0}%..{all_hi:+.0}%   (paper: {paper})"
        );
    }
    println!("\nnote: a +q charge affects the p-device exactly as -q affects the");
    println!("n-device (ambipolar mirror), as the paper states.");
    Ok(())
}
