//! Regenerates paper Fig. 4: I-V characteristics at V_D = 0.5 V for GNR
//! widths N = 9, 12, 15, 18 — band gap (hence I_on/I_off) is inversely
//! proportional to the ribbon width.

use gnr_device::{DeviceConfig, SbfetModel};
use gnrfet_explore::devices::Fidelity;
use gnrfet_explore::report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = Fidelity::from_env();
    println!("== gnrlab :: fig4 — I-V vs GNR width ==");
    println!("fidelity: {fidelity:?}");
    let vd = 0.5;
    let mut summary = Vec::new();
    for n in [9usize, 12, 15, 18] {
        let cfg = match fidelity {
            Fidelity::Paper => DeviceConfig::paper_nominal(n)?,
            Fidelity::Fast => DeviceConfig::test_small(n)?,
        };
        let model = SbfetModel::new(&cfg)?;
        let mut data = Vec::new();
        for i in 0..=32 {
            let vg = i as f64 * 0.025;
            data.push((vg, model.drain_current(vg, vd)?));
        }
        println!(
            "{}",
            report::series(
                &format!(
                    "fig4: N = {n} (w = {:.2} nm, Eg = {:.3} eV), V_D = 0.5 V",
                    cfg.gnr.width_nm(),
                    model.band_gap()
                ),
                "V_G (V)",
                "I_D (A)",
                &data,
            )
        );
        let vmin = model.minimum_leakage_vg(vd)?;
        let i_off = model.drain_current(vmin, vd)?;
        let i_on = model.drain_current(0.75, vd)?;
        summary.push((n, model.band_gap(), i_on, i_off, i_on / i_off));
    }
    println!("summary:");
    println!(
        "{:>4} {:>9} {:>12} {:>12} {:>10}",
        "N", "Eg (eV)", "I_on (A)", "I_off (A)", "on/off"
    );
    for (n, eg, on, off, ratio) in &summary {
        println!("{n:>4} {eg:>9.3} {on:>12.3e} {off:>12.3e} {ratio:>10.1}");
    }
    println!("\npaper: N=9 reaches I_on/I_off ~ 1000x; the N=18 gap is too small");
    println!("for low leakage; wider ribbons also carry ~50% more capacitance.");
    Ok(())
}
