//! Regenerates paper Fig. 2: (a) I-V characteristics of the ideal N=12
//! GNRFET at V_D ∈ {0.05, 0.25, 0.5, 0.75} V; (b) threshold-voltage
//! extraction at low V_D with and without gate work-function offset.

use gnr_device::vt::extract_vt_from;
use gnr_device::{DeviceConfig, SbfetModel};
use gnrfet_explore::devices::Fidelity;
use gnrfet_explore::report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fidelity = Fidelity::from_env();
    println!("== gnrlab :: fig2 — ideal N=12 GNRFET I-V and V_T extraction ==");
    println!("fidelity: {fidelity:?}");
    let cfg = match fidelity {
        Fidelity::Paper => DeviceConfig::paper_nominal(12)?,
        Fidelity::Fast => DeviceConfig::test_small(12)?,
    };
    let model = SbfetModel::new(&cfg)?;
    println!(
        "channel: N=12 A-GNR, {:.1} nm, Eg = {:.3} eV",
        cfg.channel_nm(),
        model.band_gap()
    );

    // --- Fig 2(a): I_D(V_G) for several drain voltages ---
    for vd in [0.05, 0.25, 0.5, 0.75] {
        let mut data = Vec::new();
        for i in 0..=30 {
            let vg = i as f64 * 0.025;
            data.push((vg, model.drain_current(vg, vd)?));
        }
        println!(
            "{}",
            report::series(
                &format!("fig2a: I_D vs V_G at V_D = {vd} V"),
                "V_G (V)",
                "I_D (A)",
                &data,
            )
        );
        let vmin = model.minimum_leakage_vg(vd)?;
        let imin = model.drain_current(vmin, vd)?;
        println!(
            "  minimum leakage: {} at V_G = {vmin:.3} V (paper: V_G ~ V_D/2 = {:.3})\n",
            report::eng(imin, "A"),
            vd / 2.0
        );
    }
    let i_on = model.drain_current(0.5, 0.5)?;
    println!(
        "I_on(V_G = V_D = 0.5 V) = {} -> {:.0} uA/um over {:.2} nm width",
        report::eng(i_on, "A"),
        i_on * 1e6 / (cfg.gnr.width_nm() * 1e-3),
        cfg.gnr.width_nm()
    );
    println!("paper: 6300 uA/um for the N=12 GNRFET at V_D = 0.5 V\n");

    // --- Fig 2(b): V_T extraction at low V_D, offset engineering ---
    let vt0 = extract_vt_from(|vg| model.drain_current(vg, 0.05), 0.0, 0.8, 60)?;
    println!("fig2b: V_T (offset = 0 V, V_D = 0.05 V)    = {vt0:.3} V (paper ~0.3 V)");
    let mut cfg_off = cfg.clone();
    cfg_off.gate_offset_v = 0.2;
    let shifted = SbfetModel::new(&cfg_off)?;
    let vt1 = extract_vt_from(|vg| shifted.drain_current(vg, 0.05), -0.2, 0.6, 60)?;
    println!("fig2b: V_T (offset = 0.2 V, V_D = 0.05 V)  = {vt1:.3} V (paper ~0.1 V)");
    println!(
        "offset moves V_T by {:.3} V (paper: by the offset, 0.2 V)",
        vt0 - vt1
    );
    Ok(())
}
