//! Regenerates paper Table 4: simultaneous worst-case width variations and
//! charge impurities — (N, q) ∈ {9, 18} × {−q, +q} on both devices. Width
//! variation dominates; impurities exacerbate it.

use gnr_num::par::ExecCtx;
use gnrfet_explore::report;
use gnrfet_explore::variability::{combined_table, Metric};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut lib = report::standard_library("table4 — combined width + impurity");
    let vdd = 0.4;
    let table = combined_table(&ExecCtx::from_env(), &mut lib, vdd)?;
    println!(
        "\nnominal inverter (V_DD = {vdd} V): delay {:.2} ps, static {:.4} uW, dynamic {:.4} uW, SNM {:.3} V\n",
        table.nominal.delay_s * 1e12,
        table.nominal.static_w * 1e6,
        table.nominal.dynamic_w * 1e6,
        table.nominal.snm_v
    );
    println!("{table}");
    for (metric, name, paper) in [
        (Metric::Delay, "delay", "worst case > +100% (2x) all-4"),
        (
            Metric::StaticPower,
            "static power",
            "worst case > +600% (7x) all-4",
        ),
        (
            Metric::DynamicPower,
            "dynamic power",
            "worst case > +100% (2x) all-4",
        ),
        (Metric::Snm, "SNM", "worst case -100% (near zero)"),
    ] {
        let ((one_lo, one_hi), (all_lo, all_hi)) = table.delta_range(metric);
        println!(
            "{name:>14}: one-of-4 range {one_lo:+.0}%..{one_hi:+.0}%, all-4 range {all_lo:+.0}%..{all_hi:+.0}%   (paper: {paper})"
        );
    }
    Ok(())
}
