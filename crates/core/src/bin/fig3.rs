//! Regenerates paper Fig. 3(b): EDP, frequency, and SNM contours of the
//! 15-stage FO4 ring oscillator over the (V_DD, V_T) design space, and the
//! operating points A (min EDP at a frequency floor), B (min EDP at
//! frequency + SNM floors), and C (equal EDP/SNM at higher V_T).

use gnrfet_explore::report;
use gnrfet_explore::service::JobRequest;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut service = report::standard_service("fig3 — (V_DD, V_T) design-space contours");
    let vdd_axis: Vec<f64> = (0..10).map(|i| 0.15 + i as f64 * 0.06).collect();
    let vt_axis: Vec<f64> = (0..9).map(|i| 0.02 + i as f64 * 0.035).collect();
    let response = service.submit(JobRequest::edp_contour(vdd_axis, vt_axis, 15))?;
    let map = response.contour().expect("contour jobs return a map");
    println!(
        "raw-table V_T = {:.3} V; {} feasible design points\n",
        map.vt_raw,
        map.feasible().count()
    );
    println!(
        "{}",
        map.render(|p| p.frequency_hz / 1e9, "frequency (GHz)")
    );
    println!(
        "{}",
        map.render(|p| (p.edp_js * 1e30).log10(), "log10 EDP (aJ-ps)")
    );
    println!("{}", map.render(|p| p.snm_v, "SNM (V)"));
    println!(
        "{}",
        map.render(|p| p.static_w * 1e6, "inverter static power (uW)")
    );

    // Operating-point methodology. The paper uses 3 GHz and SNM 0.15 V on
    // its landscape; our surrogate's landscape is rescaled (faster devices,
    // ~half the inverter gain), so the floors are set as fractions of the
    // map extremes to keep the constraints binding (see EXPERIMENTS.md).
    let f_max = map.feasible().map(|p| p.frequency_hz).fold(0.0, f64::max);
    let f_target = (3e9f64).max(0.55 * f_max);
    let snm_floor = {
        let best_snm = map.feasible().map(|p| p.snm_v).fold(0.0, f64::max);
        (0.15f64).min(0.65 * best_snm)
    };
    println!(
        "frequency floor {:.2} GHz, SNM floor {snm_floor:.3} V\n",
        f_target / 1e9
    );
    if let Some(a) = map.point_min_edp(f_target) {
        println!(
            "point A (min EDP, f >= floor):                 V_DD={:.2} V_T={:.2}  f={:.2} GHz EDP={:.1} aJ-ps SNM={:.3} V",
            a.vdd, a.vt, a.frequency_hz / 1e9, a.edp_js * 1e30, a.snm_v
        );
        if let Some(b) = map.point_min_edp_with_snm(f_target, snm_floor) {
            println!(
                "point B (+ SNM >= {snm_floor:.3} V):            V_DD={:.2} V_T={:.2}  f={:.2} GHz EDP={:.1} aJ-ps SNM={:.3} V",
                b.vdd, b.vt, b.frequency_hz / 1e9, b.edp_js * 1e30, b.snm_v
            );
            if let Some(c) = map.point_same_edp_higher_vt(&b, 0.25) {
                println!(
                    "point C (same EDP/SNM, higher V_T):      V_DD={:.2} V_T={:.2}  f={:.2} GHz EDP={:.1} aJ-ps SNM={:.3} V",
                    c.vdd, c.vt, c.frequency_hz / 1e9, c.edp_js * 1e30, c.snm_v
                );
                println!(
                    "frequency at B is {:.0}% higher than at C (paper: 40%)",
                    100.0 * (b.frequency_hz / c.frequency_hz - 1.0)
                );
            } else {
                println!("point C: no equal-EDP/SNM point at higher V_T on this grid");
            }
        } else {
            println!("point B: SNM floor {snm_floor:.3} V unreachable at 3 GHz on this grid");
        }
    } else {
        println!("point A: 3 GHz not reachable on this grid");
    }
    report::cache_summary(&response.telemetry);
    Ok(())
}
