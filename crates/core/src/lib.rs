//! `gnrfet-explore` — device-to-circuit technology exploration for GNRFET
//! circuits: the paper's primary contribution.
//!
//! This crate ties the full stack together — atomistic device tables from
//! `gnr-device`, the table-lookup circuit simulator from `gnr-spice`, and
//! the scaled-CMOS baseline from `gnr-cmos` — into the paper's evaluation
//! flow:
//!
//! * [`devices`] — a caching library of device tables for every
//!   configuration the paper studies (widths N = 9…18, oxide charges
//!   ±q/±2q, one-of-four vs all-four array scenarios), with a fidelity
//!   knob for fast tests;
//! * [`contours`] — the (V_DD, V_T) design-space maps of EDP, frequency,
//!   and SNM for the 15-stage FO4 ring oscillator (Fig. 3b) and the
//!   operating-point selection for points A, B, C;
//! * [`comparison`] — GNRFET-vs-scaled-CMOS benchmark (Table 1);
//! * [`variability`] — the width-variation / charge-impurity / combined
//!   sensitivity tables for the FO4 inverter (Tables 2–4);
//! * [`monte_carlo`] — the 15-stage ring-oscillator Monte Carlo study
//!   (Fig. 6);
//! * [`latch`] — butterfly curves and latch noise margins under worst-case
//!   variations (Fig. 7).
//!
//! Each table/figure of the paper has a matching binary under `src/bin`
//! that regenerates it (see DESIGN.md §4 for the experiment index).
//!
//! # Example
//!
//! ```no_run
//! use gnr_num::par::ExecCtx;
//! use gnrfet_explore::devices::{DeviceLibrary, DeviceVariant, Fidelity};
//! use gnrfet_explore::variability::inverter_study;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ctx = ExecCtx::from_env(); // honours GNR_THREADS
//! let mut lib = DeviceLibrary::new(Fidelity::Fast);
//! let nominal = inverter_study(
//!     &ctx,
//!     &mut lib,
//!     DeviceVariant::nominal(),
//!     DeviceVariant::nominal(),
//!     0.4,
//!     0.13,
//! )?;
//! println!("nominal FO4 delay: {:.2} ps", nominal.delay_s * 1e12);
//! # Ok(())
//! # }
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod comparison;
pub mod contours;
pub mod devices;
pub mod error;
pub mod latch;
pub mod monte_carlo;
pub mod report;
pub mod service;
pub mod variability;

pub use devices::{DeviceLibrary, Fidelity};
pub use error::ExploreError;
pub use service::{CharacterizationService, JobOutput, JobRequest, JobResponse};

// The full options surface a service request maps onto, re-exported so a
// consumer can build jobs and solver options from one import path.
pub use gnr_device::{NegfTableOptions, ScfOptions, TableKey, TableStore};
pub use gnr_spice::{DcOptions, TransientOptions};
