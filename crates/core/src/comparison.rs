//! GNRFET vs scaled CMOS — the paper's Table 1.
//!
//! Runs the same 15-stage FO4 ring-oscillator benchmark on GNRFET devices
//! at the selected operating points (A, B, C from the design-space map) and
//! on the CMOS baseline at the 22/32/45 nm nodes for
//! V_DD ∈ {0.8, 0.6, 0.4} V, reporting frequency, EDP, and inverter SNM.

use crate::contours::DesignPoint;
use crate::devices::{DeviceLibrary, DeviceVariant};
use crate::error::ExploreError;
use gnr_cmos::{CmosNode, CmosTransistor};
use gnr_device::{Polarity, TableStore};
use gnr_num::par::ExecCtx;
use gnr_spice::builders::{ExtrinsicParasitics, InverterCell, RingOscillator};
use gnr_spice::measure::{
    butterfly_snm, fo4_metrics_for_cell, inverter_static_power, inverter_vtc,
    ring_oscillator_metrics,
};
use std::fmt;

/// One benchmark row of Table 1.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRow {
    /// Row label ("GNRFET B", "CMOS 22nm @0.8V", ...).
    pub label: String,
    /// Oscillator frequency \[Hz\].
    pub frequency_hz: f64,
    /// Per-stage energy-delay product \[J·s\].
    pub edp_js: f64,
    /// Inverter SNM \[V\].
    pub snm_v: f64,
}

impl fmt::Display for BenchRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} {:>8.2} GHz {:>12.1} aJ-ps {:>8.3} V",
            self.label,
            self.frequency_hz / 1e9,
            self.edp_js * 1e30,
            self.snm_v
        )
    }
}

/// The assembled comparison.
#[derive(Clone, Debug)]
pub struct ComparisonTable {
    /// GNRFET rows (one per operating point).
    pub gnrfet: Vec<BenchRow>,
    /// CMOS rows (node × supply).
    pub cmos: Vec<BenchRow>,
}

impl ComparisonTable {
    /// The paper's headline: the ratio between the best (lowest) CMOS EDP
    /// and the best GNRFET EDP. The paper reports 40–168×.
    pub fn edp_advantage(&self) -> Option<f64> {
        let g = self
            .gnrfet
            .iter()
            .map(|r| r.edp_js)
            .fold(f64::INFINITY, f64::min);
        let c = self
            .cmos
            .iter()
            .map(|r| r.edp_js)
            .fold(f64::INFINITY, f64::min);
        if g.is_finite() && c.is_finite() && g > 0.0 {
            Some(c / g)
        } else {
            None
        }
    }
}

impl fmt::Display for ComparisonTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<22} {:>12} {:>18} {:>10}",
            "design", "freq", "EDP", "SNM"
        )?;
        for r in self.gnrfet.iter().chain(self.cmos.iter()) {
            writeln!(f, "{r}")?;
        }
        if let Some(adv) = self.edp_advantage() {
            writeln!(f, "best-CMOS / best-GNRFET EDP = {adv:.1}x")?;
        }
        Ok(())
    }
}

/// Measures a GNRFET ring oscillator at an operating point via the full
/// transient (not the FO4 estimate).
///
/// # Errors
///
/// Propagates construction and measurement failures.
pub fn gnrfet_row(
    ctx: &ExecCtx,
    lib: &mut DeviceLibrary,
    label: &str,
    point: &DesignPoint,
    stages: usize,
) -> Result<BenchRow, ExploreError> {
    let raw_n = lib.ntype_table(ctx, DeviceVariant::nominal())?;
    // Re-derive the shift from the map's raw-VT convention: the design
    // point's vt is what extract_vt would report after shifting.
    let iv: Vec<(f64, f64)> = (0..60)
        .map(|i| {
            let vg = i as f64 * 0.015;
            (vg, raw_n.current(vg, 0.05))
        })
        .collect();
    let vt_raw = gnr_device::extract_vt(&iv)?;
    let n = raw_n.with_vg_shift(point.vt - vt_raw);
    let p = n.mirrored();
    let parasitics = ExtrinsicParasitics::nominal();
    let cell = InverterCell::new(&n, &p, &parasitics)?;
    let inv = fo4_metrics_for_cell(&cell, point.vdd)?;
    let ro = RingOscillator::uniform(&cell, stages, point.vdd)?;
    let metrics = ring_oscillator_metrics(&ro, inv.delay_s, inv.static_power_w)?;
    let vtc = inverter_vtc(&cell, point.vdd, 33)?;
    let snm = butterfly_snm(&vtc, &vtc, point.vdd).snm();
    Ok(BenchRow {
        label: label.to_string(),
        frequency_hz: metrics.frequency_hz,
        edp_js: metrics.edp_js,
        snm_v: snm,
    })
}

/// Builds the inverter cell for one CMOS node at a supply voltage; the
/// p-device uses a weaker drive (hole mobility) but the same card family.
///
/// # Errors
///
/// Propagates table-construction failures.
pub fn cmos_cell(node: CmosNode, vdd: f64) -> Result<InverterCell, ExploreError> {
    cmos_cell_with_store(&TableStore::in_memory(), node, vdd)
}

/// [`cmos_cell`] through a shared content-addressed [`TableStore`]: the
/// node/supply tables are cached, so the Table 1 sweep (every node at
/// several supplies) samples each model card once per store lifetime.
///
/// # Errors
///
/// Propagates table-construction failures.
pub fn cmos_cell_with_store(
    store: &TableStore,
    node: CmosNode,
    vdd: f64,
) -> Result<InverterCell, ExploreError> {
    let nmos = CmosTransistor::nominal(node);
    // PMOS: ~2x weaker drive at ~1.8x width in real libraries; net ~0.9x
    // drive with ~1.8x capacitance.
    let pmos = CmosTransistor {
        k: nmos.k * 0.9,
        c_gate: nmos.c_gate * 1.8,
        ..nmos
    };
    let n_table = nmos.to_table_cached(store, Polarity::NType, vdd.max(0.85))?;
    let p_table = pmos.to_table_cached(store, Polarity::PType, vdd.max(0.85))?;
    // Contact resistance is already part of the compact model's effective
    // drive; no extrinsic parasitics are added.
    Ok(InverterCell::new(
        &n_table,
        &p_table,
        &ExtrinsicParasitics::none(),
    )?)
}

/// Measures one CMOS ring-oscillator row.
///
/// # Errors
///
/// Propagates measurement failures.
pub fn cmos_row(node: CmosNode, vdd: f64, stages: usize) -> Result<BenchRow, ExploreError> {
    cmos_row_with_store(&TableStore::in_memory(), node, vdd, stages)
}

/// [`cmos_row`] through a shared [`TableStore`] (see
/// [`cmos_cell_with_store`]).
///
/// # Errors
///
/// Propagates measurement failures.
pub fn cmos_row_with_store(
    store: &TableStore,
    node: CmosNode,
    vdd: f64,
    stages: usize,
) -> Result<BenchRow, ExploreError> {
    let cell = cmos_cell_with_store(store, node, vdd)?;
    let inv = fo4_metrics_for_cell(&cell, vdd)?;
    let static_w = inverter_static_power(&cell, vdd)?;
    let ro = RingOscillator::uniform(&cell, stages, vdd)?;
    let metrics = ring_oscillator_metrics(&ro, inv.delay_s, static_w)?;
    let vtc = inverter_vtc(&cell, vdd, 33)?;
    let snm = butterfly_snm(&vtc, &vtc, vdd).snm();
    Ok(BenchRow {
        label: format!("CMOS {} @{vdd:.1}V", node.label()),
        frequency_hz: metrics.frequency_hz,
        edp_js: metrics.edp_js,
        snm_v: snm,
    })
}

/// Assembles the full Table 1: GNRFET operating points vs all CMOS
/// node/supply combinations.
///
/// # Errors
///
/// Propagates measurement failures.
pub fn comparison_table(
    ctx: &ExecCtx,
    lib: &mut DeviceLibrary,
    gnrfet_points: &[(String, DesignPoint)],
    stages: usize,
) -> Result<ComparisonTable, ExploreError> {
    let mut gnrfet = Vec::new();
    for (label, point) in gnrfet_points {
        gnrfet.push(gnrfet_row(ctx, lib, label, point, stages)?);
    }
    let mut cmos = Vec::new();
    for node in CmosNode::ALL {
        for vdd in [0.8, 0.6, 0.4] {
            cmos.push(cmos_row_with_store(lib.store(), node, vdd, stages)?);
        }
    }
    Ok(ComparisonTable { gnrfet, cmos })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmos_rows_have_sane_magnitudes() {
        let row = cmos_row(CmosNode::N22, 0.8, 15).unwrap();
        // Paper: 22nm @0.8V runs at ~5.8 GHz; accept a generous band.
        assert!(
            row.frequency_hz > 1e9 && row.frequency_hz < 4e10,
            "f = {:.3e}",
            row.frequency_hz
        );
        assert!(row.snm_v > 0.15, "CMOS SNM {}", row.snm_v);
        assert!(row.edp_js > 0.0);
    }

    #[test]
    fn cmos_slows_down_at_low_vdd() {
        let fast = cmos_row(CmosNode::N22, 0.8, 15).unwrap();
        let slow = cmos_row(CmosNode::N22, 0.4, 15).unwrap();
        assert!(fast.frequency_hz > 1.5 * slow.frequency_hz);
    }

    #[test]
    fn newer_nodes_are_faster() {
        let n22 = cmos_row(CmosNode::N22, 0.8, 15).unwrap();
        let n45 = cmos_row(CmosNode::N45, 0.8, 15).unwrap();
        assert!(n22.frequency_hz > n45.frequency_hz);
    }

    #[test]
    fn edp_advantage_computation() {
        let t = ComparisonTable {
            gnrfet: vec![BenchRow {
                label: "g".into(),
                frequency_hz: 3e9,
                edp_js: 1e-26,
                snm_v: 0.1,
            }],
            cmos: vec![BenchRow {
                label: "c".into(),
                frequency_hz: 3e9,
                edp_js: 8e-25,
                snm_v: 0.2,
            }],
        };
        assert!((t.edp_advantage().unwrap() - 80.0).abs() < 1e-9);
    }
}
