//! Shared plumbing for the table/figure regeneration binaries.

use crate::devices::{DeviceLibrary, Fidelity};
use crate::service::CharacterizationService;
use gnr_num::par::ExecCtx;

/// Default on-disk table cache used by the regeneration binaries.
pub const CACHE_DIR: &str = ".gnrlab-cache";

/// Builds the standard library for a regeneration binary: fidelity from
/// the `GNRLAB_FAST` environment variable, disk cache enabled, and a
/// banner describing the run printed to stdout.
pub fn standard_library(experiment: &str) -> DeviceLibrary {
    let fidelity = Fidelity::from_env();
    println!("== gnrlab :: {experiment} ==");
    println!(
        "fidelity: {:?}{}  (set GNRLAB_FAST=1 for the quick mode)",
        fidelity,
        if fidelity == Fidelity::Fast {
            " [reduced geometry/grids]"
        } else {
            ""
        }
    );
    DeviceLibrary::with_disk_cache(fidelity, CACHE_DIR)
}

/// Builds the standard characterization service for a regeneration
/// binary: [`standard_library`] (banner, env fidelity, disk table cache)
/// wrapped in a [`CharacterizationService`] over the environment's
/// thread pool, with telemetry armed when `GNR_TELEMETRY=1` so job
/// responses carry cache and solver counters. Repeated invocations hit
/// the on-disk content-addressed cache instead of re-solving NEGF.
pub fn standard_service(experiment: &str) -> CharacterizationService {
    gnr_num::telemetry::arm_from_env();
    CharacterizationService::with_library(ExecCtx::from_env(), standard_library(experiment))
}

/// Prints the content-addressed table-cache counters from a job's
/// telemetry snapshot, when telemetry is armed (`GNR_TELEMETRY=1`).
pub fn cache_summary(telemetry: &gnr_num::telemetry::TelemetrySnapshot) {
    let get = |name: &str| telemetry.counter(name).unwrap_or(0);
    let (hits, misses) = (get("table_cache.hits"), get("table_cache.misses"));
    if hits + misses > 0 {
        println!(
            "table cache: {hits} hits, {misses} misses, {} writes, {} evictions",
            get("table_cache.writes"),
            get("table_cache.evictions")
        );
    }
}

/// Formats a quantity in engineering notation with a unit.
pub fn eng(value: f64, unit: &str) -> String {
    let (scale, prefix) = match value.abs() {
        v if v >= 1.0 => (1.0, ""),
        v if v >= 1e-3 => (1e3, "m"),
        v if v >= 1e-6 => (1e6, "u"),
        v if v >= 1e-9 => (1e9, "n"),
        v if v >= 1e-12 => (1e12, "p"),
        v if v >= 1e-15 => (1e15, "f"),
        v if v >= 1e-18 => (1e18, "a"),
        _ => (1e21, "z"),
    };
    format!("{:.3} {}{}", value * scale, prefix, unit)
}

/// Renders an xy-series as a two-column table with a caption.
pub fn series(caption: &str, x_label: &str, y_label: &str, data: &[(f64, f64)]) -> String {
    let mut out = format!("# {caption}\n# {x_label:>12} {y_label:>14}\n");
    for (x, y) in data {
        out.push_str(&format!("{x:>14.4} {y:>14.6e}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eng_formatting() {
        assert_eq!(eng(2.5e-6, "A"), "2.500 uA");
        assert_eq!(eng(3.0, "V"), "3.000 V");
        assert_eq!(eng(1.2e-12, "s"), "1.200 ps");
    }

    #[test]
    fn series_renders_rows() {
        let s = series("iv", "vg", "id", &[(0.1, 1e-6), (0.2, 2e-6)]);
        assert!(s.contains("# iv"));
        assert_eq!(s.lines().count(), 4);
    }
}
