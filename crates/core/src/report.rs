//! Shared plumbing for the table/figure regeneration binaries.

use crate::devices::{DeviceLibrary, Fidelity};

/// Default on-disk table cache used by the regeneration binaries.
pub const CACHE_DIR: &str = ".gnrlab-cache";

/// Builds the standard library for a regeneration binary: fidelity from
/// the `GNRLAB_FAST` environment variable, disk cache enabled, and a
/// banner describing the run printed to stdout.
pub fn standard_library(experiment: &str) -> DeviceLibrary {
    let fidelity = Fidelity::from_env();
    println!("== gnrlab :: {experiment} ==");
    println!(
        "fidelity: {:?}{}  (set GNRLAB_FAST=1 for the quick mode)",
        fidelity,
        if fidelity == Fidelity::Fast {
            " [reduced geometry/grids]"
        } else {
            ""
        }
    );
    DeviceLibrary::with_disk_cache(fidelity, CACHE_DIR)
}

/// Formats a quantity in engineering notation with a unit.
pub fn eng(value: f64, unit: &str) -> String {
    let (scale, prefix) = match value.abs() {
        v if v >= 1.0 => (1.0, ""),
        v if v >= 1e-3 => (1e3, "m"),
        v if v >= 1e-6 => (1e6, "u"),
        v if v >= 1e-9 => (1e9, "n"),
        v if v >= 1e-12 => (1e12, "p"),
        v if v >= 1e-15 => (1e15, "f"),
        v if v >= 1e-18 => (1e18, "a"),
        _ => (1e21, "z"),
    };
    format!("{:.3} {}{}", value * scale, prefix, unit)
}

/// Renders an xy-series as a two-column table with a caption.
pub fn series(caption: &str, x_label: &str, y_label: &str, data: &[(f64, f64)]) -> String {
    let mut out = format!("# {caption}\n# {x_label:>12} {y_label:>14}\n");
    for (x, y) in data {
        out.push_str(&format!("{x:>14.4} {y:>14.6e}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eng_formatting() {
        assert_eq!(eng(2.5e-6, "A"), "2.500 uA");
        assert_eq!(eng(3.0, "V"), "3.000 V");
        assert_eq!(eng(1.2e-12, "s"), "1.200 ps");
    }

    #[test]
    fn series_renders_rows() {
        let s = series("iv", "vg", "id", &[(0.1, 1e-6), (0.2, 2e-6)]);
        assert!(s.contains("# iv"));
        assert_eq!(s.lines().count(), 4);
    }
}
