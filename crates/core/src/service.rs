//! Characterization service: typed jobs over the exploration engines.
//!
//! The paper's methodology — device characterization feeding
//! circuit-level exploration — is exposed here as a small serving layer
//! instead of one-shot figure scripts. A [`CharacterizationService`] owns
//! an [`ExecCtx`] (thread pool, recovery policy, execution limits) and a
//! [`DeviceLibrary`] riding a content-addressed
//! [`TableStore`](gnr_device::TableStore), and processes typed
//! [`JobRequest`]s:
//!
//! * [`JobRequest::Characterize`] — build the 81-cell stage universe for
//!   one `(V_DD, stages)` operating point;
//! * [`JobRequest::McSweep`] — Monte Carlo over a universe, with
//!   checkpoint/resume by seed range and (via
//!   [`submit_streaming`](CharacterizationService::submit_streaming))
//!   per-chunk incremental delivery;
//! * [`JobRequest::EdpContour`] — the `(V_DD, V_T)` design-space map;
//! * [`JobRequest::DeckOp`] — DC operating point of a SPICE deck
//!   (`gnr_spice::netlist`), returned as a `gnr-rawfile/v1` document.
//!
//! Jobs are admitted through a FIFO queue
//! ([`enqueue`](CharacterizationService::enqueue) /
//! [`run_queued`](CharacterizationService::run_queued)) and executed one
//! at a time — each job fans its inner work (table bias grids, universe
//! cells, sample chunks) across the context's pool, so serial admission
//! costs no parallelism and keeps every run bit-identical to the
//! single-shot call. The context's [`ExecLimits`] are honored at every
//! chunk boundary: a tripped budget or cancellation surfaces as a typed
//! error (or as [`McRunOutcome::interrupted`] with the partial
//! population, for sweeps). Every [`JobResponse`] embeds a
//! [`TelemetrySnapshot`] taken after the job, so an admission controller
//! can watch cache hit rates, sample counts, and solver effort per job.
//!
//! Repeated jobs are the common case in design-space exploration, and
//! they are served from caches at two levels: device tables from the
//! content-addressed store (shared by every library and service handle
//! cloned from it), and characterized universes from an in-service memo
//! keyed by `(fidelity, V_DD, stages)`.

use crate::contours::{design_space_map, DesignSpaceMap};
use crate::devices::{DeviceLibrary, Fidelity};
use crate::error::ExploreError;
use crate::monte_carlo::{
    characterize_stage_universe_resumable, monte_carlo_from_universe_resumable,
    monte_carlo_from_universe_streaming, McChunk, McRunOutcome, StageUniverse,
};
use gnr_device::table::TableGrid;
use gnr_device::{
    ballistic_negf_table, DeviceTable, NegfTableOptions, Polarity, TableKey, TableStore,
};
use gnr_num::budget::ExecLimits;
use gnr_num::checkpoint::KeyHasher;
use gnr_num::json::Json;
use gnr_num::par::ExecCtx;
use gnr_num::telemetry::TelemetrySnapshot;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;

/// A typed characterization job in canonical form: every field that can
/// change the answer is explicit, which is what lets requests map 1:1
/// onto cache keys and solver options without field-by-field surgery.
#[derive(Clone, Debug, PartialEq)]
pub enum JobRequest {
    /// Characterize the 81-cell stage universe at one operating point.
    Characterize {
        /// Supply voltage \[V\].
        vdd: f64,
        /// Ring-oscillator stage count the universe is normalized for.
        stages: usize,
    },
    /// Monte Carlo sweep over the universe at `(vdd, stages)`.
    McSweep {
        /// Supply voltage \[V\].
        vdd: f64,
        /// Ring-oscillator stage count.
        stages: usize,
        /// Oscillator samples to draw.
        samples: usize,
        /// RNG seed (the resume identity together with the sample range).
        seed: u64,
        /// Optional checkpoint file for interrupt/resume by seed range.
        checkpoint: Option<PathBuf>,
    },
    /// The `(V_DD, V_T)` design-space map (frequency, EDP, SNM, power).
    EdpContour {
        /// Supply-voltage axis \[V\].
        vdd_axis: Vec<f64>,
        /// Threshold-shift axis \[V\].
        vt_axis: Vec<f64>,
        /// Ring-oscillator stage count.
        stages: usize,
    },
    /// A ballistic NEGF device table at the library's fidelity, served
    /// through the content-addressed store. The options select the solver
    /// path (real-space vs mode-space RGF, grid, cache), and the cached
    /// table records which path built it
    /// ([`DeviceTable::solver_path`]).
    NegfTable {
        /// GNR index of the ribbon.
        n: usize,
        /// Bias grid to tabulate.
        grid: TableGrid,
        /// Identical parallel ribbons folded into the table.
        ribbons: usize,
        /// NEGF sweep options (energy grid, cache, mode-space reduction).
        opts: NegfTableOptions,
    },
    /// DC operating point of a SPICE deck. The deck text is the whole
    /// request (canonical form): surrogate `.model` cards auto-build
    /// their tables during elaboration, and `extern` cards are rejected —
    /// a deck job carries no out-of-band table bindings.
    DeckOp {
        /// Full netlist text (title line first, `.end` last).
        deck: String,
    },
}

impl JobRequest {
    /// A characterization job at `(vdd, stages)`.
    pub fn characterize(vdd: f64, stages: usize) -> Self {
        JobRequest::Characterize { vdd, stages }
    }

    /// A Monte Carlo sweep job with no checkpoint.
    pub fn mc_sweep(vdd: f64, stages: usize, samples: usize, seed: u64) -> Self {
        JobRequest::McSweep {
            vdd,
            stages,
            samples,
            seed,
            checkpoint: None,
        }
    }

    /// A design-space contour job.
    pub fn edp_contour(vdd_axis: Vec<f64>, vt_axis: Vec<f64>, stages: usize) -> Self {
        JobRequest::EdpContour {
            vdd_axis,
            vt_axis,
            stages,
        }
    }

    /// A ballistic NEGF table job.
    pub fn negf_table(n: usize, grid: TableGrid, ribbons: usize, opts: NegfTableOptions) -> Self {
        JobRequest::NegfTable {
            n,
            grid,
            ribbons,
            opts,
        }
    }

    /// A deck DC-operating-point job.
    pub fn deck_op(deck: impl Into<String>) -> Self {
        JobRequest::DeckOp { deck: deck.into() }
    }

    /// Attaches a checkpoint path (meaningful for [`JobRequest::McSweep`];
    /// a no-op for other job kinds).
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        if let JobRequest::McSweep { checkpoint, .. } = &mut self {
            *checkpoint = Some(path.into());
        }
        self
    }
}

/// The typed payload of a completed job.
#[derive(Clone, Debug)]
pub enum JobOutput {
    /// The characterized stage universe.
    Universe(Arc<StageUniverse>),
    /// The Monte Carlo outcome (complete or interrupted-with-prefix).
    McSweep(McRunOutcome),
    /// The design-space map.
    EdpContour(DesignSpaceMap),
    /// The ballistic NEGF device table.
    Table(Arc<DeviceTable>),
    /// A deck DC solution as a `gnr-rawfile/v1` document.
    DeckRaw(Json),
}

/// A completed job: its output plus the telemetry snapshot taken when it
/// finished (counters accumulate across the service's lifetime, so the
/// *delta* between two responses is the cost of the jobs between them).
#[derive(Clone, Debug)]
pub struct JobResponse {
    /// The job's typed result.
    pub output: JobOutput,
    /// Telemetry at completion — cache hits/misses, sample counts, solver
    /// effort — for admission-control visibility.
    pub telemetry: TelemetrySnapshot,
}

impl JobResponse {
    /// The universe payload, if this response carries one.
    pub fn universe(&self) -> Option<&StageUniverse> {
        match &self.output {
            JobOutput::Universe(u) => Some(u),
            _ => None,
        }
    }

    /// The Monte Carlo payload, if this response carries one.
    pub fn mc(&self) -> Option<&McRunOutcome> {
        match &self.output {
            JobOutput::McSweep(o) => Some(o),
            _ => None,
        }
    }

    /// The contour payload, if this response carries one.
    pub fn contour(&self) -> Option<&DesignSpaceMap> {
        match &self.output {
            JobOutput::EdpContour(m) => Some(m),
            _ => None,
        }
    }

    /// The NEGF table payload, if this response carries one.
    pub fn table(&self) -> Option<&DeviceTable> {
        match &self.output {
            JobOutput::Table(t) => Some(t),
            _ => None,
        }
    }

    /// The deck rawfile payload, if this response carries one.
    pub fn deck_raw(&self) -> Option<&Json> {
        match &self.output {
            JobOutput::DeckRaw(j) => Some(j),
            _ => None,
        }
    }
}

/// The serving layer: an execution context, a cached device library, a
/// universe memo, and a FIFO admission queue. See the [module docs](self).
pub struct CharacterizationService {
    ctx: ExecCtx,
    lib: DeviceLibrary,
    universes: HashMap<u64, Arc<StageUniverse>>,
    queue: VecDeque<JobRequest>,
}

impl CharacterizationService {
    /// A service at `fidelity` on `ctx`, with a fresh in-memory table
    /// store.
    pub fn new(ctx: ExecCtx, fidelity: Fidelity) -> Self {
        Self::with_library(ctx, DeviceLibrary::new(fidelity))
    }

    /// A service over an existing library — the way to share a table
    /// store (and its already-built tables) with other consumers.
    pub fn with_library(ctx: ExecCtx, lib: DeviceLibrary) -> Self {
        CharacterizationService {
            ctx,
            lib,
            universes: HashMap::new(),
            queue: VecDeque::new(),
        }
    }

    /// The execution context jobs run on.
    pub fn ctx(&self) -> &ExecCtx {
        &self.ctx
    }

    /// The content-addressed table store backing the service's library.
    pub fn store(&self) -> &Arc<TableStore> {
        self.lib.store()
    }

    /// Mutable access to the device library (e.g. to pre-warm tables).
    pub fn library(&mut self) -> &mut DeviceLibrary {
        &mut self.lib
    }

    /// Replaces the context's execution limits (a fresh budget window or
    /// cancel token) while keeping the pool, the table store, and the
    /// universe memo — how a long-lived service accepts new jobs after a
    /// tripped budget or a cancelled sweep.
    pub fn set_limits(&mut self, limits: ExecLimits) {
        self.ctx = self.ctx.clone().with_limits(limits);
    }

    /// Appends a job to the admission queue without running it.
    pub fn enqueue(&mut self, request: JobRequest) {
        self.queue.push_back(request);
    }

    /// Jobs currently waiting in the queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Drains the queue FIFO, returning one result per job in admission
    /// order. A failed job does not abort the queue — later jobs still
    /// run — except for budget/cancellation stops, which would fail every
    /// subsequent job against the same tripped limits and therefore drain
    /// the remaining queue as errors without touching the solvers.
    pub fn run_queued(&mut self) -> Vec<Result<JobResponse, ExploreError>> {
        let mut responses = Vec::with_capacity(self.queue.len());
        while let Some(request) = self.queue.pop_front() {
            match self.ctx.check_budget("service.admit") {
                Err(e) => responses.push(Err(e.into())),
                Ok(()) => responses.push(self.submit(request)),
            }
        }
        responses
    }

    /// Runs one job to completion on the service's context.
    ///
    /// # Errors
    ///
    /// Propagates engine failures, and budget/cancellation stops (via
    /// [`ExploreError::Num`]) for characterization and contour jobs; an
    /// interrupted sweep is NOT an error (see [`McRunOutcome`]).
    pub fn submit(&mut self, request: JobRequest) -> Result<JobResponse, ExploreError> {
        let output = match request {
            JobRequest::Characterize { vdd, stages } => {
                JobOutput::Universe(self.universe(vdd, stages)?)
            }
            JobRequest::McSweep {
                vdd,
                stages,
                samples,
                seed,
                checkpoint,
            } => {
                let universe = self.universe(vdd, stages)?;
                JobOutput::McSweep(monte_carlo_from_universe_resumable(
                    &self.ctx,
                    &universe,
                    samples,
                    seed,
                    checkpoint.as_deref(),
                )?)
            }
            JobRequest::EdpContour {
                vdd_axis,
                vt_axis,
                stages,
            } => JobOutput::EdpContour(design_space_map(
                &self.ctx,
                &mut self.lib,
                &vdd_axis,
                &vt_axis,
                stages,
            )?),
            JobRequest::NegfTable {
                n,
                grid,
                ribbons,
                opts,
            } => JobOutput::Table(Arc::new(self.negf_table(n, grid, ribbons, &opts)?)),
            JobRequest::DeckOp { deck } => JobOutput::DeckRaw(self.deck_op(&deck)?),
        };
        Ok(self.respond(output))
    }

    /// Parses, elaborates, and DC-solves one deck under the service's
    /// execution limits, honoring the context's rescue policy exactly as
    /// the builder-based flows do.
    fn deck_op(&self, deck: &str) -> Result<Json, ExploreError> {
        let parsed = gnr_spice::parse_deck(deck)
            .map_err(|e| ExploreError::config(format!("deck parse: {e}")))?;
        let elab = parsed
            .elaborate(&gnr_spice::ModelBindings::new())
            .map_err(|e| ExploreError::config(format!("deck elaboration: {e}")))?;
        let x = gnr_spice::dc_operating_point(
            &elab.circuit,
            None,
            gnr_spice::DcOptions::default(),
            self.ctx.limits(),
        )?;
        Ok(gnr_spice::rawfile::dc_rawfile(&elab, &x))
    }

    /// Builds (or serves from the store) the NEGF table for one request.
    /// The canonical key covers the device geometry and every solver
    /// option, mode-space fields included, so the two RGF paths never
    /// alias each other's entries.
    fn negf_table(
        &mut self,
        n: usize,
        grid: TableGrid,
        ribbons: usize,
        opts: &NegfTableOptions,
    ) -> Result<DeviceTable, ExploreError> {
        let model = self.lib.model(n, 0.0)?;
        let key = TableKey::new("service-negf/v1")
            .field_str("fidelity", &format!("{:?}", self.lib.fidelity()))
            .device(model.config())
            .grid(&grid)
            .polarity(Polarity::NType)
            .ribbons(ribbons.max(1))
            .negf(opts)
            .finish();
        let store = Arc::clone(self.lib.store());
        let ctx = &self.ctx;
        Ok(store.get_or_build(key, || {
            ballistic_negf_table(ctx, &model, Polarity::NType, grid, ribbons, opts)
        })?)
    }

    /// Runs an [`JobRequest::McSweep`] job with streaming delivery:
    /// `sink` receives every completed chunk (restored prefix first on a
    /// resume) as soon as it lands. Non-sweep requests run exactly as
    /// [`submit`](CharacterizationService::submit) and emit nothing.
    ///
    /// # Errors
    ///
    /// As [`submit`](CharacterizationService::submit).
    pub fn submit_streaming(
        &mut self,
        request: JobRequest,
        sink: &mut dyn FnMut(&McChunk),
    ) -> Result<JobResponse, ExploreError> {
        let JobRequest::McSweep {
            vdd,
            stages,
            samples,
            seed,
            checkpoint,
        } = request
        else {
            return self.submit(request);
        };
        let universe = self.universe(vdd, stages)?;
        let outcome = monte_carlo_from_universe_streaming(
            &self.ctx,
            &universe,
            samples,
            seed,
            checkpoint.as_deref(),
            sink,
        )?;
        Ok(self.respond(JobOutput::McSweep(outcome)))
    }

    /// The memoized universe for `(vdd, stages)`, characterizing on miss.
    fn universe(&mut self, vdd: f64, stages: usize) -> Result<Arc<StageUniverse>, ExploreError> {
        let key = {
            let mut h = KeyHasher::new();
            h.write_str("service-universe");
            h.write_str(&format!("{:?}", self.lib.fidelity()));
            h.write_f64(vdd);
            h.write_u64(stages as u64);
            h.finish()
        };
        if let Some(u) = self.universes.get(&key) {
            return Ok(Arc::clone(u));
        }
        let universe = Arc::new(characterize_stage_universe_resumable(
            &self.ctx,
            &mut self.lib,
            vdd,
            stages,
            None,
        )?);
        self.universes.insert(key, Arc::clone(&universe));
        Ok(universe)
    }

    fn respond(&self, output: JobOutput) -> JobResponse {
        JobResponse {
            output,
            telemetry: self.ctx.telemetry().snapshot(),
        }
    }
}

/// Convenience: a service whose context honors the given limits (a fresh
/// [`ExecCtx::from_env`] pool with `limits` attached).
pub fn service_with_limits(fidelity: Fidelity, limits: ExecLimits) -> CharacterizationService {
    CharacterizationService::new(ExecCtx::from_env().with_limits(limits), fidelity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builders_are_canonical() {
        let a = JobRequest::mc_sweep(0.4, 15, 100, 7).with_checkpoint("/tmp/x.json");
        match a {
            JobRequest::McSweep {
                checkpoint: Some(p),
                samples: 100,
                ..
            } => assert_eq!(p, PathBuf::from("/tmp/x.json")),
            other => panic!("unexpected request {other:?}"),
        }
        // with_checkpoint on a non-sweep is an explicit no-op.
        let b = JobRequest::characterize(0.4, 15).with_checkpoint("/tmp/y.json");
        assert_eq!(
            b,
            JobRequest::Characterize {
                vdd: 0.4,
                stages: 15
            }
        );
    }
}
