//! Design-space exploration over `(V_DD, V_T)` — the paper's Fig. 3(b).
//!
//! For every grid point the nominal device tables are re-targeted to the
//! requested threshold voltage via gate-offset engineering (§2), the FO4
//! inverter is measured, and the 15-stage ring-oscillator frequency and EDP
//! are derived. The resulting maps support the paper's operating-point
//! methodology: point A (minimum EDP at a target frequency), point B
//! (minimum EDP at a target frequency *and* SNM), and point C (an
//! equal-EDP/SNM point at higher V_T whose frequency is inferior —
//! illustrating that raising V_T does not buy robustness in GNRFET
//! circuits).

use crate::devices::{DeviceLibrary, DeviceVariant};
use crate::error::ExploreError;
use gnr_device::extract_vt;
use gnr_num::par::ExecCtx;
use gnr_spice::builders::{ExtrinsicParasitics, InverterCell};
use gnr_spice::measure::{
    butterfly_snm, estimate_oscillator_from_inverter, fo4_metrics_for_cell, inverter_vtc,
};

/// One evaluated design point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DesignPoint {
    /// Supply voltage \[V\].
    pub vdd: f64,
    /// Threshold voltage \[V\].
    pub vt: f64,
    /// 15-stage FO4 ring-oscillator frequency \[Hz\].
    pub frequency_hz: f64,
    /// Energy-delay product per stage \[J·s\].
    pub edp_js: f64,
    /// Inverter butterfly SNM \[V\].
    pub snm_v: f64,
    /// Inverter static power \[W\].
    pub static_w: f64,
    /// Oscillator dynamic power \[W\].
    pub dynamic_w: f64,
}

/// The full exploration map.
#[derive(Clone, Debug)]
pub struct DesignSpaceMap {
    /// V_DD axis values \[V\].
    pub vdd_axis: Vec<f64>,
    /// V_T axis values \[V\].
    pub vt_axis: Vec<f64>,
    /// Points, row-major (`vdd` outer, `vt` inner); `None` where the
    /// operating point is infeasible (e.g. V_T ≥ V_DD).
    pub points: Vec<Option<DesignPoint>>,
    /// The raw (unshifted) table's extracted threshold voltage \[V\].
    pub vt_raw: f64,
}

impl DesignSpaceMap {
    /// Point lookup.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn at(&self, i_vdd: usize, i_vt: usize) -> Option<&DesignPoint> {
        self.points[i_vdd * self.vt_axis.len() + i_vt].as_ref()
    }

    /// All feasible points.
    pub fn feasible(&self) -> impl Iterator<Item = &DesignPoint> {
        self.points.iter().flatten()
    }

    /// Minimum-EDP point subject to a frequency floor (point A of the
    /// paper when only performance is constrained).
    pub fn point_min_edp(&self, min_freq_hz: f64) -> Option<DesignPoint> {
        self.feasible()
            .filter(|p| p.frequency_hz >= min_freq_hz)
            .min_by(|a, b| a.edp_js.total_cmp(&b.edp_js))
            .copied()
    }

    /// Minimum-EDP point subject to frequency and SNM floors (point B).
    pub fn point_min_edp_with_snm(&self, min_freq_hz: f64, min_snm_v: f64) -> Option<DesignPoint> {
        self.feasible()
            .filter(|p| p.frequency_hz >= min_freq_hz && p.snm_v >= min_snm_v)
            .min_by(|a, b| a.edp_js.total_cmp(&b.edp_js))
            .copied()
    }

    /// An alternative point with EDP and SNM within `tol_frac` of a
    /// reference point but strictly higher V_T — the paper's point C,
    /// demonstrating that trading V_T for robustness costs frequency.
    pub fn point_same_edp_higher_vt(
        &self,
        reference: &DesignPoint,
        tol_frac: f64,
    ) -> Option<DesignPoint> {
        self.feasible()
            .filter(|p| {
                p.vt > reference.vt + 1e-9
                    && p.frequency_hz < reference.frequency_hz
                    && (p.edp_js - reference.edp_js).abs() <= tol_frac * reference.edp_js
                    && (p.snm_v - reference.snm_v).abs() <= tol_frac * reference.snm_v.max(1e-6)
            })
            .max_by(|a, b| a.vt.total_cmp(&b.vt))
            .copied()
    }

    /// Renders one quantity as an ASCII grid (rows = V_DD descending,
    /// columns = V_T ascending), for the regeneration binaries.
    pub fn render(&self, quantity: impl Fn(&DesignPoint) -> f64, label: &str) -> String {
        let mut out = format!("{label}  (rows: V_DD desc, cols: V_T asc)\n        ");
        for vt in &self.vt_axis {
            out.push_str(&format!("{vt:>9.3}"));
        }
        out.push('\n');
        for (i, vdd) in self.vdd_axis.iter().enumerate().rev() {
            out.push_str(&format!("{vdd:>7.3} "));
            for j in 0..self.vt_axis.len() {
                match self.at(i, j) {
                    Some(p) => out.push_str(&format!("{:>9.3}", quantity(p))),
                    None => out.push_str(&format!("{:>9}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Helper combining the two per-point measurements so either failure mode
/// can mark the point infeasible.
fn fo4_and_vtc(
    cell: &InverterCell,
    vdd: f64,
) -> Result<(gnr_spice::measure::InverterMetrics, Vec<(f64, f64)>), gnr_spice::SpiceError> {
    let inv = fo4_metrics_for_cell(cell, vdd)?;
    let vtc = inverter_vtc(cell, vdd, 33)?;
    Ok((inv, vtc))
}

/// Computes the design-space map for the nominal device over the given
/// axes, using `stages`-stage ring-oscillator estimates derived from FO4
/// inverter transients.
///
/// # Errors
///
/// Propagates device and circuit failures.
pub fn design_space_map(
    ctx: &ExecCtx,
    lib: &mut DeviceLibrary,
    vdd_axis: &[f64],
    vt_axis: &[f64],
    stages: usize,
) -> Result<DesignSpaceMap, ExploreError> {
    let raw_n = lib.ntype_table(ctx, DeviceVariant::nominal())?;
    // Extract the raw threshold voltage at low drain bias (paper Fig. 2b).
    let iv: Vec<(f64, f64)> = (0..60)
        .map(|i| {
            let vg = i as f64 * 0.015;
            (vg, raw_n.current(vg, 0.05))
        })
        .collect();
    let vt_raw = extract_vt(&iv)?;
    let parasitics = ExtrinsicParasitics::nominal();
    let mut points = Vec::with_capacity(vdd_axis.len() * vt_axis.len());
    for &vdd in vdd_axis {
        for &vt in vt_axis {
            if vt >= 0.75 * vdd || vdd <= 0.05 {
                points.push(None);
                continue;
            }
            let shift = vt - vt_raw;
            let n = raw_n.with_vg_shift(shift);
            let p = n.mirrored();
            let cell = InverterCell::new(&n, &p, &parasitics)?;
            let point = match fo4_and_vtc(&cell, vdd) {
                Ok((inv, vtc)) => {
                    let snm = butterfly_snm(&vtc, &vtc, vdd).snm();
                    let ro = estimate_oscillator_from_inverter(&inv, stages);
                    Some(DesignPoint {
                        vdd,
                        vt,
                        frequency_hz: ro.frequency_hz,
                        edp_js: ro.edp_js,
                        snm_v: snm,
                        static_w: inv.static_power_w,
                        dynamic_w: ro.dynamic_power_w,
                    })
                }
                // Corners where the inverter cannot switch, or where the
                // over-shifted tables defeat Newton, are infeasible rather
                // than fatal.
                Err(gnr_spice::SpiceError::Measurement { .. })
                | Err(gnr_spice::SpiceError::NewtonDiverged { .. })
                | Err(gnr_spice::SpiceError::RescueChainFailed { .. }) => None,
                Err(e) => return Err(e.into()),
            };
            points.push(point);
        }
    }
    Ok(DesignSpaceMap {
        vdd_axis: vdd_axis.to_vec(),
        vt_axis: vt_axis.to_vec(),
        points,
        vt_raw,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::Fidelity;

    fn tiny_map() -> DesignSpaceMap {
        let mut lib = DeviceLibrary::new(Fidelity::Fast);
        design_space_map(
            &ExecCtx::serial(),
            &mut lib,
            &[0.3, 0.45],
            &[0.08, 0.16],
            15,
        )
        .unwrap()
    }

    #[test]
    fn map_has_feasible_points() {
        let map = tiny_map();
        assert!(map.feasible().count() >= 3, "{:?}", map.points.len());
        assert!(
            map.vt_raw > 0.1 && map.vt_raw < 0.6,
            "vt_raw {}",
            map.vt_raw
        );
    }

    #[test]
    fn higher_vdd_is_faster() {
        let map = tiny_map();
        let slow = map.at(0, 0).unwrap();
        let fast = map.at(1, 0).unwrap();
        assert!(
            fast.frequency_hz > slow.frequency_hz,
            "{:.3e} vs {:.3e}",
            fast.frequency_hz,
            slow.frequency_hz
        );
    }

    #[test]
    fn higher_vt_cuts_static_power() {
        let map = tiny_map();
        let low_vt = map.at(1, 0).unwrap();
        let high_vt = map.at(1, 1).unwrap();
        assert!(
            high_vt.static_w < low_vt.static_w,
            "{:.3e} vs {:.3e}",
            high_vt.static_w,
            low_vt.static_w
        );
    }

    #[test]
    fn point_selection_respects_constraints() {
        let map = tiny_map();
        let all_freqs: Vec<f64> = map.feasible().map(|p| p.frequency_hz).collect();
        let fmax = all_freqs.iter().copied().fold(0.0, f64::max);
        let a = map.point_min_edp(fmax * 0.5).unwrap();
        assert!(a.frequency_hz >= fmax * 0.5);
        // Unsatisfiable constraint -> None.
        assert!(map.point_min_edp(fmax * 10.0).is_none());
        assert!(map.point_min_edp_with_snm(0.0, 10.0).is_none());
    }

    #[test]
    fn render_contains_axes() {
        let map = tiny_map();
        let s = map.render(|p| p.frequency_hz / 1e9, "freq (GHz)");
        assert!(s.contains("freq"));
        assert!(s.contains("0.450") || s.contains("0.45"));
    }
}
