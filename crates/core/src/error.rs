//! Error type for the exploration flows.

use gnr_device::DeviceError;
use gnr_num::NumError;
use gnr_spice::SpiceError;
use std::error::Error;
use std::fmt;

/// Errors produced by the technology-exploration flows.
#[derive(Debug)]
pub enum ExploreError {
    /// Device-level failure.
    Device(DeviceError),
    /// Circuit-level failure.
    Spice(SpiceError),
    /// Numerics failure surfaced directly by a study driver (budget stops,
    /// checkpoint corruption).
    Num(NumError),
    /// Invalid study configuration.
    Config {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Device(e) => write!(f, "device: {e}"),
            ExploreError::Spice(e) => write!(f, "circuit: {e}"),
            ExploreError::Num(e) => write!(f, "numerics: {e}"),
            ExploreError::Config { detail } => write!(f, "invalid study: {detail}"),
        }
    }
}

impl Error for ExploreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExploreError::Device(e) => Some(e),
            ExploreError::Spice(e) => Some(e),
            ExploreError::Num(e) => Some(e),
            ExploreError::Config { .. } => None,
        }
    }
}

impl From<DeviceError> for ExploreError {
    fn from(e: DeviceError) -> Self {
        ExploreError::Device(e)
    }
}

impl From<SpiceError> for ExploreError {
    fn from(e: SpiceError) -> Self {
        ExploreError::Spice(e)
    }
}

impl From<NumError> for ExploreError {
    fn from(e: NumError) -> Self {
        ExploreError::Num(e)
    }
}

impl ExploreError {
    /// Builds a configuration error.
    pub fn config(detail: impl Into<String>) -> Self {
        ExploreError::Config {
            detail: detail.into(),
        }
    }

    /// True when this error is a budget stop ([`NumError::BudgetExhausted`]
    /// or [`NumError::Cancelled`]) at any nesting level.
    pub fn is_budget_stop(&self) -> bool {
        match self {
            ExploreError::Num(e) => e.is_budget_stop(),
            ExploreError::Device(e) => e.is_budget_stop(),
            ExploreError::Spice(SpiceError::Linear(e)) => e.is_budget_stop(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = ExploreError::config("bad grid");
        assert!(e.to_string().contains("bad grid"));
        let e: ExploreError = DeviceError::config("x").into();
        assert!(matches!(e, ExploreError::Device(_)));
    }
}
