//! Inverter sensitivity studies — the machinery behind Tables 2, 3, and 4.
//!
//! Each study cell pairs a p-device variant with an n-device variant,
//! builds the FO4 inverter at the paper's operating point
//! (V_DD = 0.4 V, V_T = 0.13 V via gate-offset engineering), and measures
//! delay, static power, dynamic power, and butterfly SNM. Results carry
//! both array scenarios (one-of-four and all-four ribbons affected), and
//! render as the paper's "x,y %" cells.

use crate::devices::{ArrayScenario, DeviceLibrary, DeviceVariant};
use crate::error::ExploreError;
use gnr_device::DeviceTable;
use gnr_num::par::ExecCtx;
use gnr_spice::builders::{ExtrinsicParasitics, InverterCell};
use gnr_spice::measure::{butterfly_snm, fo4_metrics_for_cell, inverter_vtc};
use std::fmt;

/// Full figure-of-merit set of one inverter configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InverterFigures {
    /// FO4 propagation delay \[s\].
    pub delay_s: f64,
    /// Static (leakage) power \[W\].
    pub static_w: f64,
    /// Dynamic power at the study's reference frequency \[W\].
    pub dynamic_w: f64,
    /// Switching energy per cycle \[J\].
    pub energy_j: f64,
    /// Butterfly static noise margin of the inverter against itself \[V\].
    pub snm_v: f64,
}

/// Measures one inverter configuration: `n_variant`/`p_variant` device
/// tables, shifted by `vg_shift` (the V_T-engineering offset, applied
/// identically to both polarities), at supply `vdd`.
///
/// The dynamic power is referenced to `f_ref` (pass the nominal
/// ring-oscillator frequency so variants are compared at equal activity,
/// as the paper does); pass `None` to use the raw measurement frequency.
///
/// # Errors
///
/// Propagates table construction and circuit analysis failures.
pub fn inverter_figures(
    ctx: &ExecCtx,
    lib: &mut DeviceLibrary,
    n_variant: DeviceVariant,
    p_variant: DeviceVariant,
    vdd: f64,
    vg_shift: f64,
    f_ref: Option<f64>,
) -> Result<InverterFigures, ExploreError> {
    let n = lib.ntype_table(ctx, n_variant)?.with_vg_shift(vg_shift);
    let p = lib.ptype_table(ctx, p_variant)?.with_vg_shift(vg_shift);
    inverter_figures_from_tables(&n, &p, vdd, f_ref)
}

/// Measures one inverter built from already-shifted device tables — the
/// table-free tail of [`inverter_figures`]. Because it borrows only
/// immutable tables, callers holding pre-warmed `Arc<DeviceTable>`s (the
/// Monte Carlo universe characterization) can fan cells out across a
/// thread pool without contending on the [`DeviceLibrary`].
///
/// # Errors
///
/// Propagates circuit analysis failures.
pub fn inverter_figures_from_tables(
    n: &DeviceTable,
    p: &DeviceTable,
    vdd: f64,
    f_ref: Option<f64>,
) -> Result<InverterFigures, ExploreError> {
    let parasitics = ExtrinsicParasitics::nominal();
    let cell = InverterCell::new(n, p, &parasitics)?;
    // Extreme-skew corners can defeat the DC solver outright (the ratioed
    // fight between a leaky wide pull-up and a weak narrow pull-down has
    // near-zero gain margins); record those as non-functional cells.
    let vtc = match inverter_vtc(&cell, vdd, 41) {
        Ok(v) => v,
        Err(gnr_spice::SpiceError::NewtonDiverged { .. })
        | Err(gnr_spice::SpiceError::RescueChainFailed { .. }) => {
            // The rail operating points (vin at 0 and vdd) are far from the
            // high-gain transition that defeated the sweep, so leakage is
            // usually still measurable; if even that diverges, follow the
            // dead-cell convention (leakage unknown contributes none) — a
            // NaN here would poison the Monte Carlo static-power mean
            // through the stalled-ring leakage sum.
            let static_w = gnr_spice::measure::inverter_static_power(&cell, vdd).unwrap_or(0.0);
            return Ok(InverterFigures {
                delay_s: f64::NAN,
                static_w,
                dynamic_w: f64::NAN,
                energy_j: f64::NAN,
                snm_v: 0.0,
            });
        }
        Err(e) => return Err(e.into()),
    };
    let snm = butterfly_snm(&vtc, &vtc, vdd).snm();
    // Worst-case variation corners can break the ratioed logic levels
    // outright (the SBFET potential-divider effect): the output never
    // crosses mid-rail, so timing is undefined. Record those cells as
    // non-functional (NaN delay/energy) instead of failing the study —
    // the SNM (≈ 0) and leakage remain meaningful.
    let v_oh = vtc.first().map_or(0.0, |p| p.1);
    let v_ol = vtc.last().map_or(vdd, |p| p.1);
    if v_oh < 0.6 * vdd || v_ol > 0.4 * vdd {
        let static_w =
            gnr_spice::measure::inverter_static_power(&cell, vdd).map_err(ExploreError::from)?;
        return Ok(InverterFigures {
            delay_s: f64::NAN,
            static_w,
            dynamic_w: f64::NAN,
            energy_j: f64::NAN,
            snm_v: snm,
        });
    }
    let m = fo4_metrics_for_cell(&cell, vdd)?;
    let dynamic_w = match f_ref {
        Some(f) => m.energy_per_cycle_j * f,
        None => m.dynamic_power_w,
    };
    Ok(InverterFigures {
        delay_s: m.delay_s,
        static_w: m.static_power_w,
        dynamic_w,
        energy_j: m.energy_per_cycle_j,
        snm_v: snm,
    })
}

/// Back-compat convenience used by the crate example: nominal-shift study
/// of a single variant pair at `(vdd, vt_target)`.
///
/// # Errors
///
/// Propagates measurement failures.
pub fn inverter_study(
    ctx: &ExecCtx,
    lib: &mut DeviceLibrary,
    n_variant: DeviceVariant,
    p_variant: DeviceVariant,
    vdd: f64,
    _vt_target: f64,
) -> Result<InverterFigures, ExploreError> {
    let shift = lib.min_leakage_shift(vdd)?;
    inverter_figures(ctx, lib, n_variant, p_variant, vdd, shift, None)
}

/// One table cell: both array scenarios of the same variant pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioPair {
    /// One of the four ribbons affected.
    pub one: InverterFigures,
    /// All four ribbons affected.
    pub all: InverterFigures,
}

/// A full sensitivity table (paper Tables 2–4): p-variants on rows,
/// n-variants on columns.
#[derive(Clone, Debug)]
pub struct VariabilityTable {
    /// Measured nominal reference.
    pub nominal: InverterFigures,
    /// Row (p-device) labels.
    pub row_labels: Vec<String>,
    /// Column (n-device) labels.
    pub col_labels: Vec<String>,
    /// Cells, row-major.
    pub cells: Vec<ScenarioPair>,
    /// Supply voltage of the study \[V\].
    pub vdd: f64,
}

/// The metric rendered by [`VariabilityTable::render`].
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum Metric {
    /// Propagation delay.
    Delay,
    /// Static power.
    StaticPower,
    /// Dynamic power.
    DynamicPower,
    /// Static noise margin.
    Snm,
}

impl VariabilityTable {
    /// Cell lookup.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn cell(&self, row: usize, col: usize) -> &ScenarioPair {
        &self.cells[row * self.col_labels.len() + col]
    }

    /// Percentage change of `metric` vs nominal for a scenario pair,
    /// returned as `(one_of_four_pct, all_four_pct)`.
    pub fn delta_pct(&self, row: usize, col: usize, metric: Metric) -> (f64, f64) {
        let pick = |m: &InverterFigures| match metric {
            Metric::Delay => m.delay_s,
            Metric::StaticPower => m.static_w,
            Metric::DynamicPower => m.dynamic_w,
            Metric::Snm => m.snm_v,
        };
        let base = pick(&self.nominal);
        let cell = self.cell(row, col);
        (
            100.0 * (pick(&cell.one) - base) / base,
            100.0 * (pick(&cell.all) - base) / base,
        )
    }

    /// Renders the table for one metric in the paper's "one,all" percent
    /// format.
    pub fn render(&self, metric: Metric) -> String {
        let mut out = String::new();
        let title = match metric {
            Metric::Delay => "Delay (%)",
            Metric::StaticPower => "Static power (%)",
            Metric::DynamicPower => "Dynamic power (%)",
            Metric::Snm => "SNM (%)",
        };
        out.push_str(&format!("{title}  [cell = one-of-4, all-4]\n"));
        out.push_str(&format!("{:>12} |", "p \\ n"));
        for c in &self.col_labels {
            out.push_str(&format!(" {c:>13} |"));
        }
        out.push('\n');
        for (r, rl) in self.row_labels.iter().enumerate() {
            out.push_str(&format!("{rl:>12} |"));
            for c in 0..self.col_labels.len() {
                let (one, all) = self.delta_pct(r, c, metric);
                let fmt = |v: f64| {
                    if v.is_finite() {
                        format!("{v:>6.0}")
                    } else {
                        // Non-functional cell: the inverter's logic levels
                        // collapsed under this variation combination.
                        format!("{:>6}", "dead")
                    }
                };
                out.push_str(&format!(" {},{} |", fmt(one), fmt(all)));
            }
            out.push('\n');
        }
        out
    }

    /// Extreme values of `(one, all)` percentage deltas across all cells —
    /// the paper's "x–y %" summary ranges.
    pub fn delta_range(&self, metric: Metric) -> ((f64, f64), (f64, f64)) {
        let mut one = (f64::INFINITY, f64::NEG_INFINITY);
        let mut all = (f64::INFINITY, f64::NEG_INFINITY);
        for r in 0..self.row_labels.len() {
            for c in 0..self.col_labels.len() {
                let (o, a) = self.delta_pct(r, c, metric);
                // Non-functional cells (NaN) are excluded from the ranges.
                if o.is_finite() {
                    one = (one.0.min(o), one.1.max(o));
                }
                if a.is_finite() {
                    all = (all.0.min(a), all.1.max(a));
                }
            }
        }
        (one, all)
    }
}

impl fmt::Display for VariabilityTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for m in [
            Metric::Delay,
            Metric::StaticPower,
            Metric::DynamicPower,
            Metric::Snm,
        ] {
            writeln!(f, "{}", self.render(m))?;
        }
        Ok(())
    }
}

/// Builds a sensitivity table over explicit variant axes. Axis entries are
/// `(label, n_index, charge_q)`; the scenario dimension is added
/// internally.
///
/// # Errors
///
/// Propagates measurement failures.
pub fn variability_table(
    ctx: &ExecCtx,
    lib: &mut DeviceLibrary,
    p_axis: &[(String, usize, f64)],
    n_axis: &[(String, usize, f64)],
    vdd: f64,
) -> Result<VariabilityTable, ExploreError> {
    let shift = lib.min_leakage_shift(vdd)?;
    let nominal = inverter_figures(
        ctx,
        lib,
        DeviceVariant::nominal(),
        DeviceVariant::nominal(),
        vdd,
        shift,
        None,
    )?;
    // Reference frequency: nominal 15-stage RO estimate.
    let f_ref = 1.0 / (2.0 * 15.0 * nominal.delay_s);
    // Re-measure nominal dynamic power at f_ref for consistent baselines.
    let nominal = InverterFigures {
        dynamic_w: nominal.energy_j * f_ref,
        ..nominal
    };
    let mut cells = Vec::with_capacity(p_axis.len() * n_axis.len());
    for (_, pn, pq) in p_axis {
        for (_, nn, nq) in n_axis {
            let mut pair = [InverterFigures {
                delay_s: 0.0,
                static_w: 0.0,
                dynamic_w: 0.0,
                energy_j: 0.0,
                snm_v: 0.0,
            }; 2];
            for (k, scenario) in ArrayScenario::BOTH.into_iter().enumerate() {
                let nv = DeviceVariant {
                    n: *nn,
                    charge_q: *nq,
                    scenario,
                };
                let pv = DeviceVariant {
                    n: *pn,
                    charge_q: *pq,
                    scenario,
                };
                pair[k] = inverter_figures(ctx, lib, nv, pv, vdd, shift, Some(f_ref))?;
            }
            cells.push(ScenarioPair {
                one: pair[0],
                all: pair[1],
            });
        }
    }
    Ok(VariabilityTable {
        nominal,
        row_labels: p_axis.iter().map(|(l, _, _)| l.clone()).collect(),
        col_labels: n_axis.iter().map(|(l, _, _)| l.clone()).collect(),
        cells,
        vdd,
    })
}

/// Paper Table 2: independent width variations N ∈ {9, 12, 15, 18} on both
/// devices.
///
/// # Errors
///
/// Propagates measurement failures.
pub fn width_variation_table(
    ctx: &ExecCtx,
    lib: &mut DeviceLibrary,
    vdd: f64,
) -> Result<VariabilityTable, ExploreError> {
    let axis: Vec<(String, usize, f64)> = [9, 12, 15, 18]
        .into_iter()
        .map(|n| (format!("N={n}"), n, 0.0))
        .collect();
    variability_table(ctx, lib, &axis, &axis, vdd)
}

/// Paper Table 3: independent charge impurities ∈ {−2q, −q, 0, +q, +2q}.
///
/// # Errors
///
/// Propagates measurement failures.
pub fn charge_impurity_table(
    ctx: &ExecCtx,
    lib: &mut DeviceLibrary,
    vdd: f64,
) -> Result<VariabilityTable, ExploreError> {
    let axis: Vec<(String, usize, f64)> = [-2.0, -1.0, 0.0, 1.0, 2.0]
        .into_iter()
        .map(|q| (format!("{q:+.0}q"), 12, q))
        .collect();
    // Paper's row order is +2q ... -2q for the p-device; keep ascending and
    // let the renderer label rows explicitly.
    variability_table(ctx, lib, &axis, &axis, vdd)
}

/// Paper Table 4: simultaneous worst-case width and impurity combinations
/// (N, q) ∈ {9, 18} × {−q, +q}.
///
/// # Errors
///
/// Propagates measurement failures.
pub fn combined_table(
    ctx: &ExecCtx,
    lib: &mut DeviceLibrary,
    vdd: f64,
) -> Result<VariabilityTable, ExploreError> {
    let mut axis = Vec::new();
    for n in [9usize, 18] {
        for q in [-1.0, 1.0] {
            axis.push((format!("N={n},{q:+.0}q"), n, q));
        }
    }
    variability_table(ctx, lib, &axis, &axis, vdd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::Fidelity;

    #[test]
    fn render_formats_cells() {
        let m = InverterFigures {
            delay_s: 1e-11,
            static_w: 1e-7,
            dynamic_w: 5e-7,
            energy_j: 1e-16,
            snm_v: 0.1,
        };
        let t = VariabilityTable {
            nominal: m,
            row_labels: vec!["a".into()],
            col_labels: vec!["b".into()],
            cells: vec![ScenarioPair {
                one: InverterFigures {
                    delay_s: 1.1e-11,
                    ..m
                },
                all: InverterFigures {
                    delay_s: 1.5e-11,
                    ..m
                },
            }],
            vdd: 0.4,
        };
        let (one, all) = t.delta_pct(0, 0, Metric::Delay);
        assert!((one - 10.0).abs() < 1e-9 && (all - 50.0).abs() < 1e-9);
        let rendered = t.render(Metric::Delay);
        assert!(rendered.contains("10"), "{rendered}");
        let ((lo, hi), _) = t.delta_range(Metric::Delay);
        assert!((lo - 10.0).abs() < 1e-9 && (hi - 10.0).abs() < 1e-9);
    }

    /// The core physics claim of Table 2's worst case: a narrow/narrow
    /// (N=9) inverter is slower, a wide/wide (N=18) one leaks far more.
    #[test]
    fn width_extremes_behave_like_paper() {
        let mut lib = DeviceLibrary::new(Fidelity::Fast);
        let shift = lib.min_leakage_shift(0.4).unwrap();
        let ctx = ExecCtx::serial();
        let nominal = inverter_figures(
            &ctx,
            &mut lib,
            DeviceVariant::nominal(),
            DeviceVariant::nominal(),
            0.4,
            shift,
            None,
        )
        .unwrap();
        let narrow = inverter_figures(
            &ctx,
            &mut lib,
            DeviceVariant::width(9, ArrayScenario::AllFour),
            DeviceVariant::width(9, ArrayScenario::AllFour),
            0.4,
            shift,
            None,
        )
        .unwrap();
        let wide = inverter_figures(
            &ctx,
            &mut lib,
            DeviceVariant::width(18, ArrayScenario::AllFour),
            DeviceVariant::width(18, ArrayScenario::AllFour),
            0.4,
            shift,
            None,
        )
        .unwrap();
        assert!(
            narrow.delay_s > nominal.delay_s,
            "N=9 slower: {:.2e} vs {:.2e}",
            narrow.delay_s,
            nominal.delay_s
        );
        assert!(
            wide.delay_s < nominal.delay_s,
            "N=18 faster: {:.2e} vs {:.2e}",
            wide.delay_s,
            nominal.delay_s
        );
        assert!(
            wide.static_w > 2.0 * nominal.static_w,
            "N=18 leaks: {:.2e} vs {:.2e}",
            wide.static_w,
            nominal.static_w
        );
        assert!(
            narrow.static_w < nominal.static_w,
            "N=9 leaks less: {:.2e} vs {:.2e}",
            narrow.static_w,
            nominal.static_w
        );
    }
}
