//! Device-table library with caching.
//!
//! Every experiment in the paper draws device tables from the same small
//! universe: GNR indices N ∈ {9, 12, 15, 18}, oxide impurity charges
//! 0/±q/±2q, applied to one or all four ribbons of the FET array. Building
//! a table costs seconds (3D Laplace solves + dense bias sampling), so the
//! library memoizes them in memory and optionally on disk (JSON).

use crate::error::ExploreError;
use gnr_device::table::TableGrid;
use gnr_device::{
    ChargeImpurity, DeviceConfig, DeviceError, DeviceTable, Polarity, SbfetModel, TableKey,
    TableStore,
};
use gnr_num::par::ExecCtx;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Simulation fidelity of the library.
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub enum Fidelity {
    /// Paper-fidelity: 15 nm channel, 0.25 nm grid, 46-point bias tables.
    Paper,
    /// Reduced fidelity for tests: ~10.7 nm channel, 0.5 nm grid,
    /// 21-point tables. Same physics, coarser numbers.
    Fast,
}

impl Fidelity {
    /// Reads `GNRLAB_FAST=1` from the environment to let the regeneration
    /// binaries run in quick mode.
    pub fn from_env() -> Fidelity {
        match std::env::var("GNRLAB_FAST") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Fidelity::Fast,
            _ => Fidelity::Paper,
        }
    }

    fn device_config(&self, n: usize) -> Result<DeviceConfig, ExploreError> {
        Ok(match self {
            Fidelity::Paper => DeviceConfig::paper_nominal(n)?,
            Fidelity::Fast => DeviceConfig::test_small(n)?,
        })
    }

    fn table_grid(&self) -> TableGrid {
        match self {
            Fidelity::Paper => TableGrid::paper(),
            Fidelity::Fast => TableGrid {
                vgs: (-0.35, 1.0),
                vds: (0.0, 0.85),
                points: 21,
            },
        }
    }
}

/// How many ribbons of the 4-GNR array a variation affects — the paper's
/// lower/upper-bound scenarios (§4).
#[derive(Clone, Copy, Debug, Eq, Hash, PartialEq)]
pub enum ArrayScenario {
    /// One affected ribbon out of four (lower bound).
    OneOfFour,
    /// All four ribbons affected (upper bound).
    AllFour,
}

impl ArrayScenario {
    /// Both scenarios, in the paper's reporting order.
    pub const BOTH: [ArrayScenario; 2] = [ArrayScenario::OneOfFour, ArrayScenario::AllFour];
}

/// A single-device configuration: ribbon index and oxide impurity charge
/// (in units of q) applied to the affected ribbons.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceVariant {
    /// GNR index of the affected ribbons.
    pub n: usize,
    /// Impurity charge on the affected ribbons (0 = none).
    pub charge_q: f64,
    /// How many ribbons are affected (ignored when the variant equals the
    /// nominal device).
    pub scenario: ArrayScenario,
}

impl DeviceVariant {
    /// The nominal device: four ideal N = 12 ribbons.
    pub fn nominal() -> Self {
        DeviceVariant {
            n: 12,
            charge_q: 0.0,
            scenario: ArrayScenario::AllFour,
        }
    }

    /// A width-only variant.
    pub fn width(n: usize, scenario: ArrayScenario) -> Self {
        DeviceVariant {
            n,
            charge_q: 0.0,
            scenario,
        }
    }

    /// An impurity-only variant on the nominal width.
    pub fn charge(charge_q: f64, scenario: ArrayScenario) -> Self {
        DeviceVariant {
            n: 12,
            charge_q,
            scenario,
        }
    }

    /// `true` when this is exactly the nominal device.
    pub fn is_nominal(&self) -> bool {
        self.n == 12 && self.charge_q == 0.0
    }

    #[cfg(test)]
    fn key(&self) -> String {
        let affected = match self.scenario {
            _ if self.is_nominal() => 4,
            ArrayScenario::OneOfFour => 1,
            ArrayScenario::AllFour => 4,
        };
        format!("n{}q{:+.0}x{}", self.n, self.charge_q, affected)
    }
}

/// Builds and memoizes device tables for the experiment universe.
///
/// Tables are keyed by variant; the n-type raw table is stored and p-type
/// devices are derived by mirroring (with the impurity charge sign flipped,
/// since the mirror conjugates all charges).
pub struct DeviceLibrary {
    fidelity: Fidelity,
    models: HashMap<String, Arc<SbfetModel>>,
    tables: HashMap<u64, Arc<DeviceTable>>,
    store: Arc<TableStore>,
}

impl DeviceLibrary {
    /// Creates an in-memory library.
    pub fn new(fidelity: Fidelity) -> Self {
        Self::with_store(fidelity, Arc::new(TableStore::in_memory()))
    }

    /// Creates a library that also persists tables as JSON under `dir`
    /// (used by the regeneration binaries to amortize builds across runs).
    pub fn with_disk_cache(fidelity: Fidelity, dir: impl Into<PathBuf>) -> Self {
        Self::with_store(fidelity, Arc::new(TableStore::on_disk(dir)))
    }

    /// Creates a library on an existing (possibly shared) table store —
    /// libraries sharing a store share every table they build, even with
    /// the disk layer disabled.
    pub fn with_store(fidelity: Fidelity, store: Arc<TableStore>) -> Self {
        DeviceLibrary {
            fidelity,
            models: HashMap::new(),
            tables: HashMap::new(),
            store,
        }
    }

    /// The library's fidelity.
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// The content-addressed store backing this library (clone the `Arc`
    /// to share tables with another library or service handle).
    pub fn store(&self) -> &Arc<TableStore> {
        &self.store
    }

    /// The single-ribbon physical model for `(n, charge_q)`.
    ///
    /// # Errors
    ///
    /// Propagates device-construction failures.
    pub fn model(&mut self, n: usize, charge_q: f64) -> Result<Arc<SbfetModel>, ExploreError> {
        let key = format!("n{n}q{charge_q:+.0}");
        if let Some(m) = self.models.get(&key) {
            return Ok(Arc::clone(m));
        }
        let cfg = self.fidelity.device_config(n)?;
        let model = if charge_q == 0.0 {
            SbfetModel::new(&cfg)?
        } else {
            SbfetModel::with_impurities(&cfg, &[ChargeImpurity::near_source(charge_q)])?
        };
        let arc = Arc::new(model);
        self.models.insert(key, Arc::clone(&arc));
        Ok(arc)
    }

    /// The raw (unshifted) n-type table for a variant: `affected` ribbons
    /// of the variant device in parallel with `4 − affected` nominal ones.
    ///
    /// # Errors
    ///
    /// Propagates model and table failures.
    pub fn ntype_table(
        &mut self,
        ctx: &ExecCtx,
        variant: DeviceVariant,
    ) -> Result<Arc<DeviceTable>, ExploreError> {
        let affected = if variant.is_nominal() {
            0
        } else {
            match variant.scenario {
                ArrayScenario::OneOfFour => 1,
                ArrayScenario::AllFour => 4,
            }
        };
        // The kind tag versions the canonical key: bump it when the
        // device model's physics or calibration changes.
        let key = TableKey::new("library-ntype/v3")
            .field_str("fidelity", &format!("{:?}", self.fidelity))
            .device(&self.fidelity.device_config(variant.n)?)
            .device(&self.fidelity.device_config(12)?)
            .grid(&self.fidelity.table_grid())
            .polarity(Polarity::NType)
            .ribbons(4)
            .field_f64("charge_q", variant.charge_q)
            .field_u64("affected", affected as u64)
            .finish();
        if let Some(t) = self.tables.get(&key) {
            return Ok(Arc::clone(t));
        }
        let store = Arc::clone(&self.store);
        let grid = self.fidelity.table_grid();
        let mut build_err: Option<ExploreError> = None;
        let built = store.get_or_build(key, || {
            let models = (|| -> Result<(Arc<SbfetModel>, Arc<SbfetModel>), ExploreError> {
                Ok((
                    self.model(12, 0.0)?,
                    self.model(variant.n, variant.charge_q)?,
                ))
            })();
            let (nominal, variant_model) = match models {
                Ok(pair) => pair,
                Err(e) => {
                    build_err = Some(e);
                    return Err(DeviceError::config("device library: model build failed"));
                }
            };
            let mut ribbons: Vec<Arc<SbfetModel>> = Vec::with_capacity(4);
            for i in 0..4 {
                if i < affected {
                    ribbons.push(Arc::clone(&variant_model));
                } else {
                    ribbons.push(Arc::clone(&nominal));
                }
            }
            let refs: Vec<&SbfetModel> = ribbons.iter().map(|m| m.as_ref()).collect();
            DeviceTable::from_ribbon_models(ctx, &refs, Polarity::NType, grid)
        });
        let table = match built {
            Ok(t) => t,
            Err(e) => {
                return Err(match build_err {
                    Some(outer) => outer,
                    None => e.into(),
                })
            }
        };
        let arc = Arc::new(table);
        self.tables.insert(key, Arc::clone(&arc));
        Ok(arc)
    }

    /// The p-type table for a variant. The p-device is the ambipolar mirror
    /// of the n-device, so a p-FET "with impurity charge q" corresponds to
    /// the mirrored n-table built with charge `−q` (the mirror conjugates
    /// charge; this encodes the paper's "+q on pGNRFET ≡ −q on nGNRFET").
    ///
    /// # Errors
    ///
    /// Propagates model and table failures.
    pub fn ptype_table(
        &mut self,
        ctx: &ExecCtx,
        variant: DeviceVariant,
    ) -> Result<Arc<DeviceTable>, ExploreError> {
        let mirrored_variant = DeviceVariant {
            charge_q: -variant.charge_q,
            ..variant
        };
        let n_table = self.ntype_table(ctx, mirrored_variant)?;
        Ok(Arc::new(n_table.mirrored()))
    }

    /// The gate shift that places the nominal device's minimum-leakage
    /// point at `V_GS = 0` for supply `vdd` — the paper's baseline offset
    /// engineering (§2). Returns the shift in volts (negative).
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn min_leakage_shift(&mut self, vdd: f64) -> Result<f64, ExploreError> {
        let nominal = self.model(12, 0.0)?;
        Ok(-nominal.minimum_leakage_vg(vdd)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExecCtx {
        ExecCtx::serial()
    }

    #[test]
    fn variant_keys_distinguish_configs() {
        let a = DeviceVariant::width(9, ArrayScenario::OneOfFour);
        let b = DeviceVariant::width(9, ArrayScenario::AllFour);
        let c = DeviceVariant::charge(-2.0, ArrayScenario::AllFour);
        assert_ne!(a.key(), b.key());
        assert_ne!(b.key(), c.key());
        assert!(DeviceVariant::nominal().is_nominal());
        assert!(!a.is_nominal());
    }

    #[test]
    fn library_memoizes_models() {
        let mut lib = DeviceLibrary::new(Fidelity::Fast);
        let a = lib.model(9, 0.0).unwrap();
        let b = lib.model(9, 0.0).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn one_of_four_between_nominal_and_all_four() {
        let mut lib = DeviceLibrary::new(Fidelity::Fast);
        let nominal = lib.ntype_table(&ctx(), DeviceVariant::nominal()).unwrap();
        let one = lib
            .ntype_table(&ctx(), DeviceVariant::width(9, ArrayScenario::OneOfFour))
            .unwrap();
        let all = lib
            .ntype_table(&ctx(), DeviceVariant::width(9, ArrayScenario::AllFour))
            .unwrap();
        // N=9 ribbons carry less on-current: monotone ordering of tables.
        let bias = (0.7, 0.4);
        let (i_nom, i_one, i_all) = (
            nominal.current(bias.0, bias.1),
            one.current(bias.0, bias.1),
            all.current(bias.0, bias.1),
        );
        assert!(
            i_nom > i_one && i_one > i_all,
            "{i_nom:.3e} {i_one:.3e} {i_all:.3e}"
        );
    }

    #[test]
    fn ptype_mirror_consistency() {
        let mut lib = DeviceLibrary::new(Fidelity::Fast);
        let n = lib.ntype_table(&ctx(), DeviceVariant::nominal()).unwrap();
        let p = lib.ptype_table(&ctx(), DeviceVariant::nominal()).unwrap();
        let a = n.current(0.5, 0.3);
        let b = p.current(-0.5, -0.3);
        assert!((a + b).abs() < 1e-12 * a.abs().max(1e-18));
    }

    #[test]
    fn disk_cache_roundtrip() {
        let dir = std::env::temp_dir().join("gnrlab-test-cache");
        let _ = std::fs::remove_dir_all(&dir);
        let mut lib = DeviceLibrary::with_disk_cache(Fidelity::Fast, &dir);
        let a = lib.ntype_table(&ctx(), DeviceVariant::nominal()).unwrap();
        // A fresh library must hit the disk cache (same values, no models).
        let mut lib2 = DeviceLibrary::with_disk_cache(Fidelity::Fast, &dir);
        let b = lib2.ntype_table(&ctx(), DeviceVariant::nominal()).unwrap();
        assert!(lib2.models.is_empty(), "cache hit must not build models");
        for (vg, vd) in [(0.3, 0.2), (0.6, 0.5)] {
            assert!((a.current(vg, vd) - b.current(vg, vd)).abs() < 1e-18);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn min_leakage_shift_is_negative_half_vdd_ish() {
        let mut lib = DeviceLibrary::new(Fidelity::Fast);
        let s = lib.min_leakage_shift(0.4).unwrap();
        assert!(s < -0.1 && s > -0.35, "shift {s}");
    }
}
