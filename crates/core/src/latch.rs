//! Latch butterfly curves under variations and defects — the paper's
//! Fig. 7 and the dense-memory discussion of §5.3.
//!
//! Both inverters of the cross-coupled latch share the same device
//! configuration; the worst case combines maximum width mismatch with
//! adverse impurities (n-device N = 9 with +q, p-device N = 18 with −q),
//! which collapses one eye of the butterfly plot to a near-zero noise
//! margin while leakage rises several-fold.

use crate::devices::{ArrayScenario, DeviceLibrary, DeviceVariant};
use crate::error::ExploreError;
use gnr_num::par::ExecCtx;
use gnr_spice::builders::{ExtrinsicParasitics, InverterCell, Latch};
use gnr_spice::measure::{butterfly_snm, inverter_vtc, latch_static_power, NoiseMargins};

/// One analysed latch configuration.
#[derive(Clone, Debug)]
pub struct LatchCase {
    /// Case label ("nominal", "single GNR affected", ...).
    pub label: String,
    /// VTC of the forward inverter `V_R = f(V_L)`.
    pub vtc_forward: Vec<(f64, f64)>,
    /// VTC of the feedback inverter `V_L = f(V_R)`.
    pub vtc_feedback: Vec<(f64, f64)>,
    /// Butterfly noise margins.
    pub margins: NoiseMargins,
    /// Static power of the latch \[W\].
    pub static_w: f64,
}

/// The Fig. 7 study: nominal latch, single-GNR worst case, all-GNR worst
/// case.
#[derive(Clone, Debug)]
pub struct LatchStudy {
    /// The three cases in paper order.
    pub cases: Vec<LatchCase>,
    /// Supply voltage \[V\].
    pub vdd: f64,
}

impl LatchStudy {
    /// Case lookup by label prefix.
    pub fn case(&self, prefix: &str) -> Option<&LatchCase> {
        self.cases.iter().find(|c| c.label.starts_with(prefix))
    }
}

fn latch_case(
    ctx: &ExecCtx,
    lib: &mut DeviceLibrary,
    label: &str,
    n_variant: DeviceVariant,
    p_variant: DeviceVariant,
    vdd: f64,
    shift: f64,
) -> Result<LatchCase, ExploreError> {
    let n = lib.ntype_table(ctx, n_variant)?.with_vg_shift(shift);
    let p = lib.ptype_table(ctx, p_variant)?.with_vg_shift(shift);
    let parasitics = ExtrinsicParasitics::nominal();
    let cell = InverterCell::new(&n, &p, &parasitics)?;
    // Both latch inverters share the configuration (paper §5.3).
    let latch = Latch::new(cell.clone(), cell.clone(), vdd);
    let vtc_forward = inverter_vtc(&latch.inv_a, vdd, 61)?;
    let vtc_feedback = inverter_vtc(&latch.inv_b, vdd, 61)?;
    let margins = butterfly_snm(&vtc_forward, &vtc_feedback, vdd);
    let static_w = latch_static_power(&latch)?;
    Ok(LatchCase {
        label: label.to_string(),
        vtc_forward,
        vtc_feedback,
        margins,
        static_w,
    })
}

/// Runs the three-case latch study at supply `vdd` with the nominal
/// min-leakage gate offset.
///
/// # Errors
///
/// Propagates device/circuit failures.
pub fn latch_study(
    ctx: &ExecCtx,
    lib: &mut DeviceLibrary,
    vdd: f64,
) -> Result<LatchStudy, ExploreError> {
    let shift = lib.min_leakage_shift(vdd)?;
    let worst_n = |scenario| DeviceVariant {
        n: 9,
        charge_q: 1.0,
        scenario,
    };
    let worst_p = |scenario| DeviceVariant {
        n: 18,
        charge_q: -1.0,
        scenario,
    };
    let cases = vec![
        latch_case(
            ctx,
            lib,
            "nominal",
            DeviceVariant::nominal(),
            DeviceVariant::nominal(),
            vdd,
            shift,
        )?,
        latch_case(
            ctx,
            lib,
            "single GNR affected",
            worst_n(ArrayScenario::OneOfFour),
            worst_p(ArrayScenario::OneOfFour),
            vdd,
            shift,
        )?,
        latch_case(
            ctx,
            lib,
            "all GNRs affected",
            worst_n(ArrayScenario::AllFour),
            worst_p(ArrayScenario::AllFour),
            vdd,
            shift,
        )?,
    ];
    Ok(LatchStudy { cases, vdd })
}

/// Renders a butterfly plot (both curves) as ASCII for the regeneration
/// binary.
pub fn render_butterfly(case: &LatchCase, vdd: f64, size: usize) -> String {
    let n = size.max(16);
    let mut canvas = vec![b' '; n * n];
    let to_idx = |v: f64| -> usize {
        ((v / vdd * (n - 1) as f64).round() as isize).clamp(0, n as isize - 1) as usize
    };
    for &(x, y) in &case.vtc_forward {
        let (i, j) = (to_idx(x), to_idx(y));
        canvas[(n - 1 - j) * n + i] = b'*';
    }
    for &(x, y) in &case.vtc_feedback {
        // Mirrored curve: (y, x).
        let (i, j) = (to_idx(y), to_idx(x));
        let c = &mut canvas[(n - 1 - j) * n + i];
        *c = if *c == b'*' { b'#' } else { b'o' };
    }
    let mut out = String::with_capacity(n * (n + 1));
    for row in 0..n {
        out.push_str(std::str::from_utf8(&canvas[row * n..(row + 1) * n]).expect("ascii"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::Fidelity;

    #[test]
    fn latch_study_shows_degradation() {
        let mut lib = DeviceLibrary::new(Fidelity::Fast);
        let study = latch_study(&ExecCtx::serial(), &mut lib, 0.4).unwrap();
        assert_eq!(study.cases.len(), 3);
        let nominal = study.case("nominal").unwrap();
        let single = study.case("single").unwrap();
        let all = study.case("all").unwrap();
        // Both affected cases degrade the noise margin; the worst of them
        // approaches zero (paper: one eye of the butterfly collapses).
        // Note: with identical inverters the two lobes are congruent by
        // mirror symmetry, and the single-GNR case can be *worse* than the
        // all-GNR case because mixing ribbon thresholds staircases the VTC.
        assert!(single.margins.snm() < nominal.margins.snm());
        assert!(all.margins.snm() < nominal.margins.snm());
        let worst = single.margins.snm().min(all.margins.snm());
        assert!(
            worst < 0.45 * nominal.margins.snm().max(1e-6),
            "worst case must collapse: {:.4} vs nominal {:.4}",
            worst,
            nominal.margins.snm()
        );
        // Static power rises substantially (paper: >5x in the worst case).
        assert!(
            all.static_w > 4.0 * nominal.static_w,
            "leakage: {:.3e} vs {:.3e}",
            all.static_w,
            nominal.static_w
        );
    }

    #[test]
    fn butterfly_render_contains_curves() {
        let case = LatchCase {
            label: "x".into(),
            vtc_forward: vec![(0.0, 0.4), (0.2, 0.2), (0.4, 0.0)],
            vtc_feedback: vec![(0.0, 0.4), (0.2, 0.2), (0.4, 0.0)],
            margins: NoiseMargins {
                upper_v: 0.1,
                lower_v: 0.1,
            },
            static_w: 1e-7,
        };
        let art = render_butterfly(&case, 0.4, 20);
        // Symmetric curves overlap on the diagonal and render as '#'.
        assert!(art.contains('#') || (art.contains('*') && art.contains('o')));
    }
}
