//! Monte Carlo study of the 15-stage ring oscillator — the paper's Fig. 6.
//!
//! Per the paper: "Monte Carlo simulations with independent variations in
//! width (N = 9/12/15) and charge impurities (−q/0/+q) of all inverters
//! were run on the 15-stage ring oscillator. The width and charge
//! impurities for the GNRFETs were drawn from a normal distribution, with
//! mean width N = 12 and mean charge equal to zero", discretized at ±1σ.
//!
//! The study pre-characterizes the 9 × 9 stage-configuration universe once
//! (FO4 delay/energy/leakage per n/p device pair, driving a nominal load)
//! and then composes ring periods as the sum of per-stage delays — exact
//! for ring oscillators up to loading cross-terms, and what makes 10⁴
//! samples tractable.

use crate::devices::{ArrayScenario, DeviceLibrary, DeviceVariant};
use crate::error::ExploreError;
use crate::variability::{inverter_figures, inverter_figures_from_tables, InverterFigures};
use gnr_device::DeviceTable;
use gnr_num::checkpoint::{self, Checkpoint, KeyHasher, LoadOutcome};
use gnr_num::par::ExecCtx;
use gnr_num::rng::Rng;
use gnr_num::stats::{summarize, Histogram, Summary};
use gnr_num::NumError;
use std::path::Path;
use std::sync::Arc;

/// Samples per checkpointable Monte Carlo chunk. Fixed (never derived from
/// the pool size) so chunk boundaries — and therefore the completed-prefix
/// records a checkpoint may hold — are identical at any `GNR_THREADS`.
pub const MC_CHECKPOINT_CHUNK: usize = 256;

/// Universe cells per checkpointable characterization chunk.
const CHARACTERIZE_CHECKPOINT_CHUNK: usize = 27;

const MC_CHECKPOINT_KIND: &str = "monte-carlo";
const CHARACTERIZE_CHECKPOINT_KIND: &str = "characterize";

/// Discrete ±1σ device-parameter distribution of the paper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiscreteNormal {
    /// Probability mass at −1σ (N = 9 / charge −q).
    pub p_low: f64,
    /// Probability mass at +1σ (N = 15 / charge +q).
    pub p_high: f64,
}

impl Default for DiscreteNormal {
    fn default() -> Self {
        // Tails of a unit normal beyond +-1 sigma: 15.87% each.
        DiscreteNormal {
            p_low: 0.1587,
            p_high: 0.1587,
        }
    }
}

impl DiscreteNormal {
    fn draw<T: Copy>(&self, rng: &mut Rng, low: T, mid: T, high: T) -> T {
        let u = rng.uniform();
        if u < self.p_low {
            low
        } else if u < self.p_low + self.p_high {
            high
        } else {
            mid
        }
    }
}

/// Result of the Monte Carlo study.
#[derive(Clone, Debug)]
pub struct MonteCarloResult {
    /// Oscillator frequency per sample \[Hz\].
    pub frequency_hz: Vec<f64>,
    /// Dynamic power per sample \[W\].
    pub dynamic_w: Vec<f64>,
    /// Static power per sample \[W\].
    pub static_w: Vec<f64>,
    /// Nominal (no-variation) reference metrics.
    pub nominal_frequency_hz: f64,
    /// Nominal dynamic power \[W\].
    pub nominal_dynamic_w: f64,
    /// Nominal static power \[W\].
    pub nominal_static_w: f64,
    /// Samples whose ring contained a non-functional stage (logic levels
    /// collapsed under the drawn variations): the ring stalls, so no
    /// frequency/power is recorded for them.
    pub stalled_samples: usize,
}

impl MonteCarloResult {
    /// Summary statistics of the frequency distribution.
    ///
    /// # Errors
    ///
    /// Propagates empty-sample errors (cannot occur for `samples > 0`).
    pub fn frequency_summary(&self) -> Result<Summary, ExploreError> {
        summarize(&self.frequency_hz).map_err(|e| ExploreError::config(e.to_string()))
    }

    /// Summary statistics of the static power distribution.
    ///
    /// # Errors
    ///
    /// See [`MonteCarloResult::frequency_summary`].
    pub fn static_summary(&self) -> Result<Summary, ExploreError> {
        summarize(&self.static_w).map_err(|e| ExploreError::config(e.to_string()))
    }

    /// Summary statistics of the dynamic power distribution.
    ///
    /// # Errors
    ///
    /// See [`MonteCarloResult::frequency_summary`].
    pub fn dynamic_summary(&self) -> Result<Summary, ExploreError> {
        summarize(&self.dynamic_w).map_err(|e| ExploreError::config(e.to_string()))
    }

    /// Fraction of samples that produced a working oscillator:
    /// `functional / (functional + stalled)`. `1.0` for an empty run.
    pub fn functional_yield(&self) -> f64 {
        let total = self.frequency_hz.len() + self.stalled_samples;
        if total == 0 {
            1.0
        } else {
            self.frequency_hz.len() as f64 / total as f64
        }
    }

    /// Builds a histogram of one sample vector spanning its min–max range.
    ///
    /// # Errors
    ///
    /// Returns a configuration error for empty samples.
    pub fn histogram(values: &[f64], bins: usize) -> Result<Histogram, ExploreError> {
        let s = summarize(values).map_err(|e| ExploreError::config(e.to_string()))?;
        let pad = (s.max - s.min).max(1e-30) * 0.05;
        let mut h = Histogram::new(s.min - pad, s.max + pad, bins)
            .map_err(|e| ExploreError::config(e.to_string()))?;
        h.record_all(values.iter().copied());
        Ok(h)
    }
}

/// The pre-characterized 9 × 9 stage-configuration universe: inverter
/// figures for every (n-device, p-device) pairing of widths {9, 12, 15}
/// and charges {−q, 0, +q}.
#[derive(Clone, Debug)]
pub struct StageUniverse {
    figures: Vec<InverterFigures>,
    stages: usize,
}

impl StageUniverse {
    /// The ring-oscillator stage count the universe was characterized for.
    pub fn stages(&self) -> usize {
        self.stages
    }
}

/// A characterization-failed universe cell: the stage is treated like one
/// with collapsed logic levels (NaN delay/energy stalls any ring drawing
/// it); its leakage is unknown, so it contributes none.
const DEAD_CELL: InverterFigures = InverterFigures {
    delay_s: f64::NAN,
    static_w: 0.0,
    dynamic_w: f64::NAN,
    energy_j: f64::NAN,
    snm_v: f64::NAN,
};

/// Characterizes the stage universe once; sampling via
/// [`monte_carlo_from_universe`] is then microseconds per ring.
///
/// The 81 cell characterizations fan out across `ctx`'s thread pool.
/// Because the nine n-type and nine p-type shifted tables are pre-warmed
/// serially (the [`DeviceLibrary`] memoizes under `&mut self`) and fault
/// probes are pre-drawn in cell order, the resulting universe — and every
/// recorded fault — is bit-identical for any pool size.
///
/// Per-cell failures are isolated into dead cells (NaN figures, so rings
/// drawing them stall and count against yield) and recorded in
/// `ctx.faults()` with their cell index under stage `"characterize"`.
/// Only the nominal reference cell stays fatal, since every other figure
/// is normalized against it.
///
/// # Errors
///
/// Propagates nominal-reference characterization failures.
pub fn characterize_stage_universe(
    ctx: &ExecCtx,
    lib: &mut DeviceLibrary,
    vdd: f64,
    stages: usize,
) -> Result<StageUniverse, ExploreError> {
    characterize_universe_engine(ctx, lib, vdd, stages, None, false)
}

/// [`characterize_stage_universe`] under the context's execution budget,
/// with crash-consistent checkpoint/resume.
///
/// When `checkpoint_path` is set, the completed-cell prefix is persisted
/// (write-temp-then-rename) after every chunk of
/// [`CHARACTERIZE_CHECKPOINT_CHUNK`] cells, keyed on fidelity, `vdd`, and
/// `stages`; a later call with the same arguments resumes from the prefix
/// and produces a bit-identical universe. A stale or corrupt file is
/// discarded (and deleted) for a clean from-scratch restart. The
/// checkpoint is removed on completion. Restored dead cells are not
/// re-recorded in `ctx.faults()` — their fault events belong to the run
/// that computed them.
///
/// # Errors
///
/// As [`characterize_stage_universe`], plus
/// [`NumError::BudgetExhausted`] / `Cancelled` (via [`ExploreError::Num`])
/// when the context's budget trips between chunks — the checkpoint then
/// holds every completed cell — and configuration errors for unwritable
/// checkpoint paths.
pub fn characterize_stage_universe_resumable(
    ctx: &ExecCtx,
    lib: &mut DeviceLibrary,
    vdd: f64,
    stages: usize,
    checkpoint_path: Option<&Path>,
) -> Result<StageUniverse, ExploreError> {
    characterize_universe_engine(ctx, lib, vdd, stages, checkpoint_path, true)
}

fn characterize_universe_engine(
    ctx: &ExecCtx,
    lib: &mut DeviceLibrary,
    vdd: f64,
    stages: usize,
    checkpoint_path: Option<&Path>,
    enforce_budget: bool,
) -> Result<StageUniverse, ExploreError> {
    let _stage_timer = ctx.time_scope("mc.characterize.time");
    let shift = lib.min_leakage_shift(vdd)?;
    let nominal_freq_guess = {
        let nominal = inverter_figures(
            ctx,
            lib,
            DeviceVariant::nominal(),
            DeviceVariant::nominal(),
            vdd,
            shift,
            None,
        )?;
        1.0 / (2.0 * stages as f64 * nominal.delay_s)
    };
    // Pre-warm the 9 + 9 shifted tables serially: the library's memoization
    // needs `&mut self`, and sharing `Arc`s lets all 81 cells proceed
    // without cloning tables. A failing build poisons only the cells that
    // draw it (matching the per-cell isolation of the serial flow), not the
    // whole run; the error string is what the cell would have recorded.
    let config = |i: usize| DeviceVariant {
        n: MC_WIDTHS[i / 3],
        charge_q: MC_CHARGES[i % 3],
        scenario: ArrayScenario::AllFour,
    };
    let mut n_tables: Vec<Result<Arc<DeviceTable>, String>> = Vec::with_capacity(9);
    let mut p_tables: Vec<Result<Arc<DeviceTable>, String>> = Vec::with_capacity(9);
    for i in 0..9 {
        n_tables.push(
            lib.ntype_table(ctx, config(i))
                .map(|t| Arc::new(t.with_vg_shift(shift)))
                .map_err(|e| e.to_string()),
        );
        p_tables.push(
            lib.ptype_table(ctx, config(i))
                .map(|t| Arc::new(t.with_vg_shift(shift)))
                .map_err(|e| e.to_string()),
        );
    }
    // Pre-draw the injector probes in cell order so the per-site RNG stream
    // advances exactly as in a serial run, whatever the pool size (and
    // whether or not a checkpoint skips the leading cells).
    let injected: Vec<bool> = (0..81)
        .map(|_| gnr_num::fault::should_fail("characterize"))
        .collect();
    let key = {
        let mut h = KeyHasher::new();
        h.write_str(CHARACTERIZE_CHECKPOINT_KIND);
        h.write_str(&format!("{:?}", lib.fidelity()));
        h.write_f64(vdd);
        h.write_u64(stages as u64);
        h.finish()
    };
    let mut figures: Vec<InverterFigures> = Vec::with_capacity(81);
    if let Some(path) = checkpoint_path {
        if let LoadOutcome::Resume(cp) =
            checkpoint::load(path, CHARACTERIZE_CHECKPOINT_KIND, key, 0, 81)
        {
            if cp.records.iter().all(|r| r.len() == 5) {
                figures.extend(cp.records.iter().map(|r| InverterFigures {
                    delay_s: r[0],
                    static_w: r[1],
                    dynamic_w: r[2],
                    energy_j: r[3],
                    snm_v: r[4],
                }));
            }
        }
    }
    let mut interrupted: Option<NumError> = None;
    while figures.len() < 81 {
        if enforce_budget {
            if let Err(e) = ctx.check_budget("characterize.chunk") {
                interrupted = Some(e);
                break;
            }
        }
        let lo = figures.len();
        let hi = (lo + CHARACTERIZE_CHECKPOINT_CHUNK).min(81);
        let cells: Vec<Result<InverterFigures, String>> = ctx.par_map_indexed(hi - lo, |i| {
            let cell = lo + i;
            if injected[cell] {
                return Err(ExploreError::config(
                    "injected fault: cell characterization suppressed",
                )
                .to_string());
            }
            let n = n_tables[cell / 9].as_ref().map_err(String::clone)?;
            let p = p_tables[cell % 9].as_ref().map_err(String::clone)?;
            inverter_figures_from_tables(n, p, vdd, Some(nominal_freq_guess))
                .map_err(|e| e.to_string())
        });
        ctx.counter_add("mc.characterize.cells", (hi - lo) as u64);
        for (offset, cell_result) in cells.into_iter().enumerate() {
            match cell_result {
                Ok(figs) => figures.push(figs),
                Err(e) => {
                    ctx.record_fault(lo + offset, "characterize", e);
                    ctx.counter_inc("mc.characterize.dead_cells");
                    figures.push(DEAD_CELL);
                }
            }
        }
        if let Some(path) = checkpoint_path {
            let cp = Checkpoint {
                kind: CHARACTERIZE_CHECKPOINT_KIND.to_string(),
                key,
                seed: 0,
                total: 81,
                records: figures
                    .iter()
                    .map(|f| vec![f.delay_s, f.static_w, f.dynamic_w, f.energy_j, f.snm_v])
                    .collect(),
            };
            checkpoint::save(path, &cp)
                .map_err(|e| ExploreError::config(format!("checkpoint write failed: {e}")))?;
        }
    }
    if let Some(e) = interrupted {
        return Err(e.into());
    }
    if let Some(path) = checkpoint_path {
        // Completed: the checkpoint has served its purpose.
        let _ = std::fs::remove_file(path);
    }
    Ok(StageUniverse { figures, stages })
}

const MC_WIDTHS: [usize; 3] = [9, 12, 15];
const MC_CHARGES: [f64; 3] = [-1.0, 0.0, 1.0];

fn cfg_index(w: usize, q: f64) -> usize {
    let wi = MC_WIDTHS
        .iter()
        .position(|&x| x == w)
        .expect("width in set");
    let qi = MC_CHARGES
        .iter()
        .position(|&x| x == q)
        .expect("charge in set");
    wi * 3 + qi
}

/// Runs the Monte Carlo study: `samples` oscillators of `stages` stages,
/// devices drawn per the paper's discretized normal. Characterization
/// faults (cell id, stage `"characterize"`) and stalled rings (sample id,
/// stage `"ring"`) are recorded in `ctx.faults()`.
///
/// # Errors
///
/// Propagates characterization failures.
pub fn ring_oscillator_monte_carlo(
    ctx: &ExecCtx,
    lib: &mut DeviceLibrary,
    vdd: f64,
    stages: usize,
    samples: usize,
    seed: u64,
) -> Result<MonteCarloResult, ExploreError> {
    let universe = characterize_stage_universe(ctx, lib, vdd, stages)?;
    Ok(monte_carlo_from_universe(ctx, &universe, samples, seed))
}

/// Samples `samples` rings from a pre-characterized universe, fanning the
/// per-sample composition across `ctx`'s thread pool. All RNG draws happen
/// serially up front (in the exact per-sample, per-stage `nw, nq, pw, pq`
/// order of the historic serial loop), so results are bit-identical for
/// any pool size. Stalled rings are recorded in `ctx.faults()` (sample id,
/// stage `"ring"`), in sample order.
pub fn monte_carlo_from_universe(
    ctx: &ExecCtx,
    universe: &StageUniverse,
    samples: usize,
    seed: u64,
) -> MonteCarloResult {
    let (totals, _) = mc_totals_engine(ctx, universe, samples, seed, None, false)
        .expect("checkpoint-free unbudgeted engine cannot fail");
    result_from_totals(ctx, universe, &totals)
}

/// Outcome of a budget-aware, checkpointable Monte Carlo run
/// ([`monte_carlo_from_universe_resumable`]).
#[derive(Clone, Debug)]
pub struct McRunOutcome {
    /// Statistics over the completed sample prefix (all samples when the
    /// run finished; a partial population when it was interrupted).
    pub result: MonteCarloResult,
    /// Samples actually composed (or restored from a checkpoint).
    pub completed_samples: usize,
    /// Samples the caller asked for.
    pub requested_samples: usize,
    /// `Some(BudgetExhausted | Cancelled)` when the run stopped at a chunk
    /// boundary before completing; `None` for a finished run.
    pub interrupted: Option<NumError>,
}

impl McRunOutcome {
    /// True when every requested sample was composed.
    pub fn is_complete(&self) -> bool {
        self.interrupted.is_none() && self.completed_samples == self.requested_samples
    }
}

/// [`monte_carlo_from_universe`] under the context's execution budget, with
/// crash-consistent checkpoint/resume.
///
/// The sample loop runs in chunks of [`MC_CHECKPOINT_CHUNK`]; the budget
/// and cancel token (see [`ExecCtx::check_budget`]) are probed at every
/// chunk boundary. When `checkpoint_path` is set, the completed per-sample
/// records are persisted (write-temp-then-rename) after each chunk, keyed
/// on the universe content, sample count, and RNG seed.
///
/// A resumed run replays the *entire* serial pre-draw (every RNG draw of
/// every sample, finished or not) and then skips the restored prefix, so
/// the final summary is bit-identical to an uninterrupted run at any
/// `GNR_THREADS`. A stale or corrupt checkpoint is discarded (and deleted)
/// for a clean from-scratch restart; the file is removed on completion.
/// Stall fault events for restored samples are re-recorded during the
/// final merge, in sample order.
///
/// # Errors
///
/// Returns a configuration error when the checkpoint path is unwritable.
/// Budget exhaustion is NOT an error: it is reported via
/// [`McRunOutcome::interrupted`] alongside the partial statistics.
pub fn monte_carlo_from_universe_resumable(
    ctx: &ExecCtx,
    universe: &StageUniverse,
    samples: usize,
    seed: u64,
    checkpoint_path: Option<&Path>,
) -> Result<McRunOutcome, ExploreError> {
    let (totals, interrupted) =
        mc_totals_engine(ctx, universe, samples, seed, checkpoint_path, true)?;
    let completed = totals.len();
    let result = result_from_totals(ctx, universe, &totals);
    Ok(McRunOutcome {
        result,
        completed_samples: completed,
        requested_samples: samples,
        interrupted,
    })
}

/// One streamed chunk of a Monte Carlo run: the per-sample
/// `(period, energy, leakage)` totals for samples
/// `start .. start + totals.len()`, emitted as soon as the chunk lands.
#[derive(Clone, Debug, PartialEq)]
pub struct McChunk {
    /// Index of the first sample in this chunk.
    pub start: usize,
    /// Per-sample `(period \[s\], energy \[J\], leakage \[W\])` totals.
    pub totals: Vec<(f64, f64, f64)>,
    /// `true` when the chunk was restored from a checkpoint (resumed seed
    /// range) instead of being computed by this run.
    pub restored: bool,
}

/// [`monte_carlo_from_universe_resumable`] with incremental delivery:
/// `sink` receives every completed chunk ([`MC_CHECKPOINT_CHUNK`] samples,
/// last one possibly short) as soon as it lands, in sample order. On a
/// resumed run the restored prefix arrives first as a single chunk with
/// [`McChunk::restored`] set, so a consumer always sees the full
/// contiguous sample range exactly once. Chunk contents are bit-identical
/// for any `GNR_THREADS` (the chunk boundaries are fixed and the merge is
/// ordered).
///
/// # Errors
///
/// As [`monte_carlo_from_universe_resumable`].
pub fn monte_carlo_from_universe_streaming(
    ctx: &ExecCtx,
    universe: &StageUniverse,
    samples: usize,
    seed: u64,
    checkpoint_path: Option<&Path>,
    sink: &mut dyn FnMut(&McChunk),
) -> Result<McRunOutcome, ExploreError> {
    let (totals, interrupted) = mc_totals_engine_with(
        ctx,
        universe,
        samples,
        seed,
        checkpoint_path,
        true,
        Some(sink),
    )?;
    let completed = totals.len();
    let result = result_from_totals(ctx, universe, &totals);
    Ok(McRunOutcome {
        result,
        completed_samples: completed,
        requested_samples: samples,
        interrupted,
    })
}

/// FNV identity of a sampling run: universe content, stage count, and
/// sample count (the seed is carried separately in the checkpoint header).
fn mc_universe_key(universe: &StageUniverse, samples: usize) -> u64 {
    let mut h = KeyHasher::new();
    h.write_str(MC_CHECKPOINT_KIND);
    h.write_u64(universe.stages as u64);
    h.write_u64(samples as u64);
    for f in &universe.figures {
        h.write_f64(f.delay_s);
        h.write_f64(f.static_w);
        h.write_f64(f.dynamic_w);
        h.write_f64(f.energy_j);
        h.write_f64(f.snm_v);
    }
    h.finish()
}

/// Per-sample `(period, energy, leakage)` totals for a completed prefix,
/// plus the budget stop that ended the run early, if any.
type McTotals = (Vec<(f64, f64, f64)>, Option<NumError>);

/// The chunked composition engine shared by the plain and resumable entry
/// points: pre-draws every sample serially, restores any checkpointed
/// prefix, then composes the remaining samples chunk by chunk. Returns the
/// per-sample `(period, energy, leakage)` totals for the completed prefix
/// plus the budget stop that ended the run early, if any.
fn mc_totals_engine(
    ctx: &ExecCtx,
    universe: &StageUniverse,
    samples: usize,
    seed: u64,
    checkpoint_path: Option<&Path>,
    enforce_budget: bool,
) -> Result<McTotals, ExploreError> {
    mc_totals_engine_with(
        ctx,
        universe,
        samples,
        seed,
        checkpoint_path,
        enforce_budget,
        None,
    )
}

/// [`mc_totals_engine`] with an optional per-chunk sink (the streaming
/// delivery path); `None` skips all chunk notifications.
fn mc_totals_engine_with(
    ctx: &ExecCtx,
    universe: &StageUniverse,
    samples: usize,
    seed: u64,
    checkpoint_path: Option<&Path>,
    enforce_budget: bool,
    mut sink: Option<&mut dyn FnMut(&McChunk)>,
) -> Result<McTotals, ExploreError> {
    let _stage_timer = ctx.time_scope("mc.sample.time");
    let stages = universe.stages;
    let pair =
        |ncfg: usize, pcfg: usize| -> &InverterFigures { &universe.figures[ncfg * 9 + pcfg] };

    // The full serial pre-draw runs unconditionally — also on resumed runs
    // — so the RNG consumption pattern (per-sample, per-stage nw, nq, pw,
    // pq) never depends on where a previous run stopped.
    let dist = DiscreteNormal::default();
    let mut rng = Rng::seed_from_u64(seed);
    let mut draws: Vec<(usize, usize)> = Vec::with_capacity(samples * stages);
    for _ in 0..samples {
        for _ in 0..stages {
            let nw = dist.draw(&mut rng, 9usize, 12, 15);
            let nq = dist.draw(&mut rng, -1.0f64, 0.0, 1.0);
            let pw = dist.draw(&mut rng, 9usize, 12, 15);
            let pq = dist.draw(&mut rng, -1.0f64, 0.0, 1.0);
            draws.push((cfg_index(nw, nq), cfg_index(pw, pq)));
        }
    }

    let key = mc_universe_key(universe, samples);
    let mut totals: Vec<(f64, f64, f64)> = Vec::with_capacity(samples);
    if let Some(path) = checkpoint_path {
        if let LoadOutcome::Resume(cp) =
            checkpoint::load(path, MC_CHECKPOINT_KIND, key, seed, samples)
        {
            if cp.records.iter().all(|r| r.len() == 3) {
                totals.extend(cp.records.iter().map(|r| (r[0], r[1], r[2])));
            }
        }
    }
    if !totals.is_empty() {
        if let Some(sink) = sink.as_mut() {
            sink(&McChunk {
                start: 0,
                totals: totals.clone(),
                restored: true,
            });
        }
    }

    let mut interrupted: Option<NumError> = None;
    while totals.len() < samples {
        if enforce_budget {
            if let Err(e) = ctx.check_budget("mc.chunk") {
                interrupted = Some(e);
                break;
            }
        }
        let lo = totals.len();
        let hi = (lo + MC_CHECKPOINT_CHUNK).min(samples);
        // Per-sample accumulation preserves the serial loop's operation
        // order exactly (stage order within a sample); samples are
        // independent, so chunking cannot change their bits.
        let chunk: Vec<(f64, f64, f64)> = ctx.par_map_indexed(hi - lo, |i| {
            let sample = lo + i;
            let mut period = 0.0;
            let mut energy = 0.0;
            let mut leak = 0.0;
            for &(ncfg, pcfg) in &draws[sample * stages..(sample + 1) * stages] {
                let figs = pair(ncfg, pcfg);
                period += 2.0 * figs.delay_s;
                energy += figs.energy_j;
                // Dummies (3 per stage) share the driving stage's config.
                leak += 4.0 * figs.static_w;
            }
            (period, energy, leak)
        });
        if let Some(sink) = sink.as_mut() {
            sink(&McChunk {
                start: lo,
                totals: chunk.clone(),
                restored: false,
            });
        }
        totals.extend(chunk);
        ctx.counter_add("mc.samples", (hi - lo) as u64);
        if let Some(path) = checkpoint_path {
            let cp = Checkpoint {
                kind: MC_CHECKPOINT_KIND.to_string(),
                key,
                seed,
                total: samples,
                records: totals.iter().map(|&(p, e, l)| vec![p, e, l]).collect(),
            };
            checkpoint::save(path, &cp)
                .map_err(|e| ExploreError::config(format!("checkpoint write failed: {e}")))?;
        }
    }
    if interrupted.is_none() {
        if let Some(path) = checkpoint_path {
            // Completed: the checkpoint has served its purpose.
            let _ = std::fs::remove_file(path);
        }
    }
    Ok((totals, interrupted))
}

/// Merges per-sample totals into a [`MonteCarloResult`], walking samples in
/// index order so stall records land in sample order for any pool size.
fn result_from_totals(
    ctx: &ExecCtx,
    universe: &StageUniverse,
    totals: &[(f64, f64, f64)],
) -> MonteCarloResult {
    let stages = universe.stages;
    let pair =
        |ncfg: usize, pcfg: usize| -> &InverterFigures { &universe.figures[ncfg * 9 + pcfg] };
    let nominal = pair(cfg_index(12, 0.0), cfg_index(12, 0.0));
    let nominal_period = 2.0 * stages as f64 * nominal.delay_s;
    let nominal_frequency_hz = 1.0 / nominal_period;
    let nominal_dynamic_w = stages as f64 * nominal.energy_j / nominal_period;
    let nominal_static_w = 4.0 * stages as f64 * nominal.static_w;

    let mut frequency_hz = Vec::with_capacity(totals.len());
    let mut dynamic_w = Vec::with_capacity(totals.len());
    let mut static_w = Vec::with_capacity(totals.len());
    let mut stalled_samples = 0usize;
    for (sample, &(period, energy, leak)) in totals.iter().enumerate() {
        // A drawn stage with collapsed logic levels (NaN delay) stalls the
        // ring: count it as a functional-yield loss, keep its leakage.
        if !period.is_finite() || !energy.is_finite() {
            stalled_samples += 1;
            ctx.record_fault(
                sample,
                "ring",
                "ring stalled: non-finite period/energy from a dead or collapsed stage",
            );
            static_w.push(leak);
            continue;
        }
        frequency_hz.push(1.0 / period);
        dynamic_w.push(energy / period);
        static_w.push(leak);
    }
    // Recorded once after the ordered merge: commutative totals, so any
    // pool size reports identical counters.
    ctx.counter_add("mc.stalled_rings", stalled_samples as u64);
    MonteCarloResult {
        frequency_hz,
        dynamic_w,
        static_w,
        nominal_frequency_hz,
        nominal_dynamic_w,
        nominal_static_w,
        stalled_samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_normal_masses() {
        let d = DiscreteNormal::default();
        let mut rng = Rng::seed_from_u64(7);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            match d.draw(&mut rng, 0usize, 1, 2) {
                0 => counts[0] += 1,
                1 => counts[1] += 1,
                _ => counts[2] += 1,
            }
        }
        let f = |c: usize| c as f64 / 30_000.0;
        assert!((f(counts[0]) - 0.1587).abs() < 0.01);
        assert!((f(counts[2]) - 0.1587).abs() < 0.01);
        assert!((f(counts[1]) - 0.6826).abs() < 0.015);
    }

    /// Universe sampling is bit-identical across pool sizes: the RNG is
    /// consumed serially up front and the merge preserves sample order.
    #[test]
    fn universe_sampling_bit_identical_across_pools() {
        // A synthetic universe with one dead cell exercises the stall path.
        let mut figures = vec![
            InverterFigures {
                delay_s: 1e-11,
                static_w: 1e-7,
                dynamic_w: 5e-7,
                energy_j: 1e-16,
                snm_v: 0.1,
            };
            81
        ];
        for (i, f) in figures.iter_mut().enumerate() {
            f.delay_s *= 1.0 + 0.01 * i as f64;
            f.static_w *= 1.0 + 0.02 * i as f64;
        }
        figures[7] = DEAD_CELL;
        let universe = StageUniverse {
            figures,
            stages: 15,
        };
        let serial_ctx = ExecCtx::serial();
        let serial = monte_carlo_from_universe(&serial_ctx, &universe, 500, 20080608);
        for threads in [2, 4] {
            let ctx = ExecCtx::with_threads(threads);
            let par = monte_carlo_from_universe(&ctx, &universe, 500, 20080608);
            assert_eq!(serial.stalled_samples, par.stalled_samples);
            assert_eq!(serial.frequency_hz.len(), par.frequency_hz.len());
            for (a, b) in serial.frequency_hz.iter().zip(&par.frequency_hz) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in serial.dynamic_w.iter().zip(&par.dynamic_w) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in serial.static_w.iter().zip(&par.static_w) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            // Stall faults land in the shared log in sample order.
            let faults = ctx.faults().take();
            assert_eq!(faults.len(), par.stalled_samples);
            let samples: Vec<usize> = faults.events().iter().map(|e| e.sample).collect();
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            assert_eq!(samples, sorted);
        }
    }

    fn synthetic_universe() -> StageUniverse {
        let mut figures = vec![
            InverterFigures {
                delay_s: 1e-11,
                static_w: 1e-7,
                dynamic_w: 5e-7,
                energy_j: 1e-16,
                snm_v: 0.1,
            };
            81
        ];
        for (i, f) in figures.iter_mut().enumerate() {
            f.delay_s *= 1.0 + 0.01 * i as f64;
            f.static_w *= 1.0 + 0.02 * i as f64;
        }
        figures[7] = DEAD_CELL;
        StageUniverse {
            figures,
            stages: 15,
        }
    }

    fn temp_checkpoint(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gnr-mc-test-{}-{name}.json", std::process::id()))
    }

    #[test]
    fn resumable_full_run_matches_plain_bit_for_bit() {
        let universe = synthetic_universe();
        let ctx = ExecCtx::with_threads(2);
        let plain = monte_carlo_from_universe(&ctx, &universe, 700, 20080608);
        let out = monte_carlo_from_universe_resumable(&ctx, &universe, 700, 20080608, None)
            .expect("no checkpoint IO");
        assert!(out.is_complete());
        assert_eq!(plain.stalled_samples, out.result.stalled_samples);
        for (a, b) in plain.frequency_hz.iter().zip(&out.result.frequency_hz) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in plain.static_w.iter().zip(&out.result.static_w) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn interrupted_run_checkpoints_and_resumes_bit_identically() {
        use gnr_num::budget::{Budget, ExecLimits};
        let universe = synthetic_universe();
        let path = temp_checkpoint("resume");
        let _ = std::fs::remove_file(&path);

        let plain_ctx = ExecCtx::serial();
        let uninterrupted = monte_carlo_from_universe(&plain_ctx, &universe, 700, 20080608);

        // Budget for exactly one chunk: 700 samples need three chunks, so
        // the run stops early with a checkpoint holding 256 samples.
        let limits = ExecLimits::none().with_budget(Budget::unlimited().with_check_cap(1));
        let ctx = ExecCtx::serial().with_limits(limits);
        let partial =
            monte_carlo_from_universe_resumable(&ctx, &universe, 700, 20080608, Some(&path))
                .expect("checkpoint writes");
        assert!(partial.interrupted.is_some(), "budget should have tripped");
        assert_eq!(partial.completed_samples, MC_CHECKPOINT_CHUNK);
        assert!(path.exists(), "checkpoint file persisted");
        // The partial population is a strict prefix of the full run.
        assert!(partial.result.frequency_hz.len() < uninterrupted.frequency_hz.len());
        for (a, b) in partial
            .result
            .frequency_hz
            .iter()
            .zip(&uninterrupted.frequency_hz)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // Resume on a differently-sized pool: bit-identical final summary.
        let ctx = ExecCtx::with_threads(4);
        let resumed =
            monte_carlo_from_universe_resumable(&ctx, &universe, 700, 20080608, Some(&path))
                .expect("resumes");
        assert!(resumed.is_complete());
        assert!(!path.exists(), "checkpoint removed on completion");
        assert_eq!(
            resumed.result.stalled_samples,
            uninterrupted.stalled_samples
        );
        assert_eq!(
            resumed.result.frequency_hz.len(),
            uninterrupted.frequency_hz.len()
        );
        for (a, b) in resumed
            .result
            .frequency_hz
            .iter()
            .zip(&uninterrupted.frequency_hz)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in resumed
            .result
            .dynamic_w
            .iter()
            .zip(&uninterrupted.dynamic_w)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in resumed.result.static_w.iter().zip(&uninterrupted.static_w) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn mismatched_checkpoint_is_discarded_and_run_restarts_clean() {
        let universe = synthetic_universe();
        let path = temp_checkpoint("mismatch");
        let _ = std::fs::remove_file(&path);
        // Checkpoint a run with a different seed...
        let ctx = ExecCtx::serial();
        let limits = gnr_num::budget::ExecLimits::none()
            .with_budget(gnr_num::budget::Budget::unlimited().with_check_cap(1));
        let bctx = ctx.with_limits(limits);
        let partial = monte_carlo_from_universe_resumable(&bctx, &universe, 700, 1, Some(&path))
            .expect("checkpoint writes");
        assert!(partial.interrupted.is_some());
        // ...then ask for seed 20080608: the stale file must be discarded
        // and the result must equal a from-scratch run.
        let resumed =
            monte_carlo_from_universe_resumable(&ctx, &universe, 700, 20080608, Some(&path))
                .expect("restarts");
        assert!(resumed.is_complete());
        let fresh = monte_carlo_from_universe(&ctx, &universe, 700, 20080608);
        assert_eq!(resumed.result.stalled_samples, fresh.stalled_samples);
        for (a, b) in resumed.result.frequency_hz.iter().zip(&fresh.frequency_hz) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn histogram_covers_samples() {
        let values = vec![1.0, 2.0, 3.0, 2.5, 2.0];
        let h = MonteCarloResult::histogram(&values, 5).unwrap();
        assert_eq!(h.total(), 5);
        assert_eq!(h.outliers(), (0, 0));
    }
}
