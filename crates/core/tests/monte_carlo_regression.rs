//! Regression tests pinning the Monte Carlo variability study (§4 of the
//! paper) to the in-house RNG: bit-reproducibility for a fixed seed and a
//! stable frequency/power distribution against the recorded baseline.

use gnr_num::par::ExecCtx;
use gnrfet_explore::devices::{DeviceLibrary, Fidelity};
use gnrfet_explore::monte_carlo::{
    characterize_stage_universe, monte_carlo_from_universe, ring_oscillator_monte_carlo,
};

/// Two consecutive runs with the same seed produce bit-identical sample
/// vectors — the acceptance criterion for deterministic Monte Carlo.
#[test]
fn fixed_seed_is_bit_reproducible() {
    let ctx = ExecCtx::serial();
    let mut lib = DeviceLibrary::new(Fidelity::Fast);
    let universe = characterize_stage_universe(&ctx, &mut lib, 0.4, 15).expect("characterizes");
    let a = monte_carlo_from_universe(&ctx, &universe, 2000, 20080608);
    let b = monte_carlo_from_universe(&ctx, &universe, 2000, 20080608);
    assert_eq!(a.frequency_hz.len(), b.frequency_hz.len());
    for (x, y) in a.frequency_hz.iter().zip(&b.frequency_hz) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    for (x, y) in a.dynamic_w.iter().zip(&b.dynamic_w) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    for (x, y) in a.static_w.iter().zip(&b.static_w) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.stalled_samples, b.stalled_samples);

    // A different seed draws a different ring population.
    let c = monte_carlo_from_universe(&ctx, &universe, 2000, 1);
    assert!(
        a.frequency_hz
            .iter()
            .zip(&c.frequency_hz)
            .any(|(x, y)| x.to_bits() != y.to_bits()),
        "seed must steer the sample stream"
    );
}

/// The §4 width/charge-variation statistics for the pinned seed: the
/// distribution shape is a physics regression (spread around nominal,
/// every sampled ring slower than none-faster-than bound, finite powers).
#[test]
fn width_variation_statistics_pinned() {
    let mut lib = DeviceLibrary::new(Fidelity::Fast);
    let mc = ring_oscillator_monte_carlo(&ExecCtx::serial(), &mut lib, 0.4, 15, 2000, 20080608)
        .expect("runs");
    let kept = mc.frequency_hz.len();
    assert!(mc.stalled_samples + kept == 2000);
    // The functional yield for this seed is exactly 1470/2000 — the draw
    // sequence is pinned by the RNG contract, so any change to the sampler
    // or the generator moves this count and must be reviewed.
    assert_eq!(kept, 1470, "functional yield changed");
    assert_eq!(mc.stalled_samples, 530, "stalled-sample count changed");
    assert!((mc.functional_yield() - 0.735).abs() < 1e-12);

    // Pinned distribution shape for seed 20080608 at Fast fidelity
    // (loose ±bands so a deliberate surrogate retune doesn't thrash the
    // test, while an RNG or sampling regression fails loudly). Measured:
    // nominal 7.74 GHz, mean 1.58 GHz, std 2.05 GHz, max 7.52 GHz — the
    // variation tail is dominated by slow N=9/charged stages, hence the
    // strongly left-shifted mean (paper Fig. 6 shows the same skew
    // direction at full fidelity).
    let f = mc.frequency_summary().expect("summary");
    let rel = f.mean / mc.nominal_frequency_hz;
    assert!((0.1..0.4).contains(&rel), "mean/nominal {rel}");
    let cv = f.std_dev / f.mean;
    assert!((0.8..2.0).contains(&cv), "cv {cv}");
    assert!(f.min > 0.0 && f.min < 0.05 * mc.nominal_frequency_hz);
    // Fastest sampled ring sits just below nominal (7.52 vs 7.74 GHz):
    // a 15-stage ring rarely draws fast devices at every stage.
    assert!(f.max < 1.05 * mc.nominal_frequency_hz, "f.max {}", f.max);

    // Static power: mean dominated by the leaky +1σ (N = 15) tail, so the
    // mean must exceed the nominal composition.
    let s = mc.static_summary().expect("summary");
    assert!(
        s.mean > mc.nominal_static_w,
        "{} vs {}",
        s.mean,
        mc.nominal_static_w
    );
    // Dynamic power positive and finite.
    let d = mc.dynamic_summary().expect("summary");
    assert!(d.min > 0.0 && d.max.is_finite());
}
