//! Benchmarks of the device-level kernels: band structure, contact
//! self-energies, RGF transmission, 3D Poisson solves, and the
//! semi-analytic SBFET evaluation that feeds table construction.

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_device::{DeviceConfig, SbfetModel};
use gnr_lattice::{unit_cell_hamiltonian, AGnr, DeviceHamiltonian};
use gnr_negf::lead::surface_gf;
use gnr_negf::{Lead, RgfSolver};
use gnr_poisson::{Grid3, PoissonProblem, Region};
use std::hint::black_box;
use std::time::Duration;

fn bench_band_structure(c: &mut Criterion) {
    let gnr = AGnr::new(12).expect("valid index");
    c.bench_function("band_structure_n12_64k", |b| {
        b.iter(|| black_box(gnr.band_structure(64).expect("bands solve")))
    });
}

fn bench_surface_gf(c: &mut Criterion) {
    let gnr = AGnr::new(12).expect("valid index");
    let (h00, h01) = unit_cell_hamiltonian(gnr);
    c.bench_function("sancho_rubio_surface_gf_24x24", |b| {
        b.iter(|| black_box(surface_gf(black_box(0.9), &h00, &h01, 1e-5, 200).expect("converges")))
    });
}

fn bench_rgf_transmission(c: &mut Criterion) {
    let gnr = AGnr::new(12).expect("valid index");
    let h = DeviceHamiltonian::flat_band(gnr, 12).expect("builds");
    let solver = RgfSolver::new(&h, Lead::metal(), Lead::metal());
    c.bench_function("rgf_transmission_12layers", |b| {
        b.iter(|| black_box(solver.transmission(black_box(0.7)).expect("solves")))
    });
    c.bench_function("rgf_spectral_slice_12layers", |b| {
        b.iter(|| black_box(solver.spectral_slice(black_box(0.7)).expect("solves")))
    });
}

fn bench_poisson(c: &mut Criterion) {
    let grid = Grid3::new(40, 12, 12, 0.5).expect("valid grid");
    let mut p = PoissonProblem::new(grid);
    p.set_electrode(Region::slab_x(0, 0), 0.0);
    p.set_electrode(Region::slab_x(39, 39), 0.5);
    p.set_dielectric(Region::new((1, 38), (0, 11), (0, 11)), 3.9);
    p.add_point_charge(5.0, 3.0, 3.0, 1.0);
    c.bench_function("poisson_cg_5760_cells_cold", |b| {
        b.iter(|| black_box(p.solve(None).expect("solves")))
    });
    let warm = p.solve(None).expect("solves");
    c.bench_function("poisson_cg_5760_cells_warm", |b| {
        b.iter(|| black_box(p.solve(Some(warm.raw())).expect("solves")))
    });
}

fn bench_zigzag_bands(c: &mut Criterion) {
    let z = gnr_lattice::ZGnr::new(8).expect("valid index");
    c.bench_function("zigzag_band_structure_n8_64k", |b| {
        b.iter(|| black_box(z.band_structure(64).expect("solves")))
    });
}

fn bench_sbfet(c: &mut Criterion) {
    let cfg = DeviceConfig::test_small(12).expect("valid");
    c.bench_function("sbfet_model_build", |b| {
        b.iter(|| black_box(SbfetModel::new(&cfg).expect("builds")))
    });
    let model = SbfetModel::new(&cfg).expect("builds");
    c.bench_function("sbfet_bias_point_eval", |b| {
        b.iter(|| black_box(model.evaluate(black_box(0.45), black_box(0.4)).expect("evaluates")))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_band_structure, bench_zigzag_bands, bench_surface_gf,
              bench_rgf_transmission, bench_poisson, bench_sbfet
}
criterion_main!(benches);
