//! Benchmarks of the circuit-level kernels: DC operating points, transfer
//! curves, FO4 transients, ring-oscillator transients, and the butterfly
//! SNM extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use gnr_device::table::TableGrid;
use gnr_device::{DeviceConfig, DeviceTable, Polarity, SbfetModel};
use gnr_spice::builders::{ExtrinsicParasitics, InverterCell, RingOscillator};
use gnr_spice::measure::{
    butterfly_snm, fo4_metrics_for_cell, inverter_static_power, inverter_vtc,
    ring_oscillator_metrics,
};
use std::hint::black_box;
use std::time::Duration;

fn nominal_cell() -> (InverterCell, f64) {
    let cfg = DeviceConfig::test_small(12).expect("valid");
    let model = SbfetModel::new(&cfg).expect("builds");
    let vmin = model.minimum_leakage_vg(0.4).expect("minimum");
    let grid = TableGrid {
        vgs: (-0.35, 1.0),
        vds: (0.0, 0.85),
        points: 21,
    };
    let n = DeviceTable::from_model(&model, Polarity::NType, grid, 4)
        .expect("table")
        .with_vg_shift(-vmin);
    let p = n.mirrored();
    (
        InverterCell::new(&n, &p, &ExtrinsicParasitics::nominal()).expect("cell"),
        0.4,
    )
}

fn bench_dc(c: &mut Criterion) {
    let (cell, vdd) = nominal_cell();
    c.bench_function("inverter_static_power_dc", |b| {
        b.iter(|| black_box(inverter_static_power(&cell, vdd).expect("solves")))
    });
    c.bench_function("inverter_vtc_33pts", |b| {
        b.iter(|| black_box(inverter_vtc(&cell, vdd, 33).expect("sweeps")))
    });
}

fn bench_snm(c: &mut Criterion) {
    let (cell, vdd) = nominal_cell();
    let vtc = inverter_vtc(&cell, vdd, 41).expect("sweeps");
    c.bench_function("butterfly_snm_maxsquare_dp", |b| {
        b.iter(|| black_box(butterfly_snm(&vtc, &vtc, vdd)))
    });
}

fn bench_transients(c: &mut Criterion) {
    let (cell, vdd) = nominal_cell();
    c.bench_function("fo4_inverter_transient", |b| {
        b.iter(|| black_box(fo4_metrics_for_cell(&cell, vdd).expect("measures")))
    });
    let inv = fo4_metrics_for_cell(&cell, vdd).expect("measures");
    let ro = RingOscillator::uniform(&cell, 15, vdd).expect("builds");
    c.bench_function("ring_oscillator_15stage_transient", |b| {
        b.iter(|| {
            black_box(
                ring_oscillator_metrics(&ro, inv.delay_s, inv.static_power_w)
                    .expect("oscillates"),
            )
        })
    });
}

fn bench_table_ops(c: &mut Criterion) {
    let (cell, _) = nominal_cell();
    c.bench_function("table_lookup_current_gm_gds", |b| {
        b.iter(|| {
            let t = &cell.nfet;
            black_box((
                t.current(black_box(0.31), black_box(0.22)),
                t.gm(0.31, 0.22),
                t.gds(0.31, 0.22),
            ))
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dc, bench_snm, bench_transients, bench_table_ops
}
criterion_main!(benches);
