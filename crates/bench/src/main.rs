//! `gnr-bench` — the workspace's in-house benchmark runner.
//!
//! Replaces the former criterion benches with a zero-dependency harness.
//! Suites:
//!
//! - `device`      — band structure, surface GF, RGF, Poisson, SBFET eval
//! - `circuit`     — DC, VTC, SNM, FO4/ring transients, table lookups
//! - `ablations`   — RGF vs dense, table vs model, integrator, SCF mixing
//! - `experiments` — reduced-size versions of every paper table/figure
//!
//! `device` and `circuit` run by default; pass `--suite all` for
//! everything. `--json` prints the machine-readable document consumed by
//! the `BENCH_*.json` perf-trajectory tooling:
//!
//! ```text
//! cargo run -p gnr-bench --release -- --json > BENCH_baseline.json
//! ```

mod ablations;
mod circuit_kernels;
mod device_kernels;
mod experiments;
mod harness;

use harness::{BenchOptions, Harness};

const USAGE: &str = "\
gnr-bench — zero-dependency benchmark harness for the gnrlab workspace

USAGE:
    gnr-bench [OPTIONS]

OPTIONS:
    --json             emit machine-readable JSON on stdout (BENCH_*.json)
    --suite <NAME>     run a suite: device | circuit | ablations |
                       experiments | all  (repeatable; default: device,circuit)
    --filter <SUBSTR>  only run benchmarks whose suite/name contains SUBSTR
    --quick            smoke profile: short warmup and measurement windows
    --list             print the selected benchmark names without running
    -h, --help         show this help
";

struct Cli {
    json: bool,
    quick: bool,
    list: bool,
    filter: Option<String>,
    suites: Vec<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        json: false,
        quick: false,
        list: false,
        filter: None,
        suites: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => cli.json = true,
            "--quick" => cli.quick = true,
            "--list" => cli.list = true,
            "--filter" => {
                cli.filter = Some(args.next().ok_or("--filter needs a value")?);
            }
            "--suite" => {
                let s = args.next().ok_or("--suite needs a value")?;
                match s.as_str() {
                    "device" | "circuit" | "ablations" | "experiments" | "all" => {
                        cli.suites.push(s);
                    }
                    other => return Err(format!("unknown suite '{other}'")),
                }
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            // Tolerate `cargo bench`-style trailing args like `--bench`.
            "--bench" => {}
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if cli.suites.is_empty() {
        cli.suites = vec!["device".into(), "circuit".into()];
    }
    if cli.suites.iter().any(|s| s == "all") {
        cli.suites = vec![
            "device".into(),
            "circuit".into(),
            "ablations".into(),
            "experiments".into(),
        ];
    }
    Ok(cli)
}

fn main() {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let opts = if cli.quick {
        BenchOptions::quick()
    } else {
        BenchOptions::standard()
    };
    let mut h = Harness::new(opts, cli.filter.clone(), cli.list, cli.json);
    for suite in &cli.suites {
        match suite.as_str() {
            "device" => device_kernels::register(&mut h),
            "circuit" => circuit_kernels::register(&mut h),
            "ablations" => ablations::register(&mut h),
            "experiments" => experiments::register(&mut h),
            _ => unreachable!("validated in parse_args"),
        }
    }
    if cli.list {
        for name in h.listed() {
            println!("{name}");
        }
        return;
    }
    if cli.json {
        println!("{}", h.to_json(cli.quick).dump());
    } else {
        print!("{}", h.to_table());
        eprintln!("{} benchmarks complete", h.records().len());
    }
}
