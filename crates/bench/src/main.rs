//! `gnr-bench` — the workspace's in-house benchmark runner.
//!
//! Replaces the former criterion benches with a zero-dependency harness.
//! Suites:
//!
//! - `device`      — band structure, surface GF, RGF, Poisson, SBFET eval
//! - `circuit`     — DC, VTC, SNM, FO4/ring transients, table lookups
//! - `ablations`   — RGF vs dense, table vs model, integrator, SCF mixing
//! - `experiments` — reduced-size versions of every paper table/figure
//!
//! `device` and `circuit` run by default; pass `--suite all` for
//! everything. `--json` prints the machine-readable document consumed by
//! the `BENCH_*.json` perf-trajectory tooling:
//!
//! ```text
//! cargo run -p gnr-bench --release -- --json > BENCH_baseline.json
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod ablations;
mod circuit_kernels;
mod compare;
mod device_kernels;
mod experiments;
mod harness;

use harness::{BenchOptions, Harness};

const USAGE: &str = "\
gnr-bench — zero-dependency benchmark harness for the gnrlab workspace

USAGE:
    gnr-bench [OPTIONS]
    gnr-bench compare --baseline <FILE> --current <FILE> [--tolerance <FRAC>]

OPTIONS:
    --json             emit machine-readable JSON on stdout (BENCH_*.json)
    --suite <NAME>     run a suite: device | circuit | ablations |
                       experiments | all  (repeatable; default: device,circuit)
    --filter <SUBSTR>  only run benchmarks whose suite/name contains SUBSTR
    --quick            smoke profile: short warmup and measurement windows
    --list             print the selected benchmark names without running
    -h, --help         show this help

COMPARE MODE (the CI perf gate):
    Diffs a --json run against a checked-in baseline. Fails (exit 1) on a
    best-case (min_ns) timing regression beyond --tolerance (default
    0.25 = +25%; noise-robust — host interference only adds time),
    warns on telemetry counter drift and added/removed benchmarks, and
    skips (exit 0) when the baseline's hardware tag does not match this
    host. Set GNR_TELEMETRY=1 to embed solver counters in --json output.
";

struct Cli {
    json: bool,
    quick: bool,
    list: bool,
    filter: Option<String>,
    suites: Vec<String>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        json: false,
        quick: false,
        list: false,
        filter: None,
        suites: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => cli.json = true,
            "--quick" => cli.quick = true,
            "--list" => cli.list = true,
            "--filter" => {
                cli.filter = Some(args.next().ok_or("--filter needs a value")?);
            }
            "--suite" => {
                let s = args.next().ok_or("--suite needs a value")?;
                match s.as_str() {
                    "device" | "circuit" | "ablations" | "experiments" | "all" => {
                        cli.suites.push(s);
                    }
                    other => return Err(format!("unknown suite '{other}'")),
                }
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            // Tolerate `cargo bench`-style trailing args like `--bench`.
            "--bench" => {}
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if cli.suites.is_empty() {
        cli.suites = vec!["device".into(), "circuit".into()];
    }
    if cli.suites.iter().any(|s| s == "all") {
        cli.suites = vec![
            "device".into(),
            "circuit".into(),
            "ablations".into(),
            "experiments".into(),
        ];
    }
    Ok(cli)
}

/// Parses and runs `gnr-bench compare ...`; returns the process exit code.
fn run_compare(args: &[String]) -> i32 {
    let mut baseline: Option<String> = None;
    let mut current: Option<String> = None;
    let mut opts = compare::CompareOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => baseline = it.next().cloned(),
            "--current" => current = it.next().cloned(),
            "--tolerance" => {
                let Some(t) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("error: --tolerance needs a number\n\n{USAGE}");
                    return 2;
                };
                opts.timing_tolerance = t;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return 0;
            }
            other => {
                eprintln!("error: unknown compare option '{other}'\n\n{USAGE}");
                return 2;
            }
        }
    }
    let (Some(base_path), Some(cur_path)) = (baseline, current) else {
        eprintln!("error: compare needs --baseline and --current\n\n{USAGE}");
        return 2;
    };
    let load = |path: &str| -> Result<gnr_num::Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        gnr_num::Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
    };
    let (base_doc, cur_doc) = match (load(&base_path), load(&cur_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let report = compare::compare(&base_doc, &cur_doc, opts);
    print!("{}", report.render());
    i32::from(!report.passed())
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("compare") {
        std::process::exit(run_compare(&raw[1..]));
    }
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let telemetry_armed = gnr_num::telemetry::arm_from_env();
    let opts = if cli.quick {
        BenchOptions::quick()
    } else {
        BenchOptions::standard()
    };
    let mut h = Harness::new(opts, cli.filter.clone(), cli.list, cli.json);
    for suite in &cli.suites {
        match suite.as_str() {
            "device" => device_kernels::register(&mut h),
            "circuit" => circuit_kernels::register(&mut h),
            "ablations" => ablations::register(&mut h),
            "experiments" => experiments::register(&mut h),
            _ => unreachable!("validated in parse_args"),
        }
    }
    if cli.list {
        for name in h.listed() {
            println!("{name}");
        }
        return;
    }
    let snapshot = telemetry_armed.then(gnr_num::telemetry::snapshot);
    if cli.json {
        let telemetry = snapshot.map(|s| s.to_json());
        println!(
            "{}",
            h.to_json(cli.quick, &compare::hardware_tag(), telemetry)
                .dump()
        );
    } else {
        print!("{}", h.to_table());
        if let Some(snap) = snapshot {
            if !snap.is_empty() {
                println!("\ntelemetry ({} metrics):", snap.len());
                print!("{}", snap.render());
            }
        }
        eprintln!("{} benchmarks complete", h.records().len());
    }
}
