//! In-house benchmark harness.
//!
//! Replaces `criterion` so the workspace builds with zero external crates.
//! Each benchmark runs a warmup phase, then `samples` timed batches; the
//! per-iteration wall time of each batch forms the sample distribution
//! from which median/p10/p90 are reported. Results can be emitted as a
//! machine-readable JSON document (the `BENCH_*.json` trajectory format)
//! or as a human-readable table.

use gnr_num::Json;
use std::time::{Duration, Instant};

/// Timing controls for one harness run.
#[derive(Clone, Copy, Debug)]
pub struct BenchOptions {
    /// Warmup budget before any timing is recorded.
    pub warmup: Duration,
    /// Total measurement budget per benchmark.
    pub measure: Duration,
    /// Number of timed batches (each contributes one per-iteration sample).
    pub samples: usize,
}

impl BenchOptions {
    /// The default profile: comparable to the old criterion configuration
    /// (300 ms warmup, 2 s measurement).
    pub fn standard() -> Self {
        BenchOptions {
            warmup: Duration::from_millis(300),
            measure: Duration::from_secs(2),
            samples: 20,
        }
    }

    /// A fast smoke profile for CI and `--quick` runs.
    pub fn quick() -> Self {
        BenchOptions {
            warmup: Duration::from_millis(30),
            measure: Duration::from_millis(200),
            samples: 10,
        }
    }
}

/// Statistics of one completed benchmark.
#[derive(Clone, Debug)]
pub struct Record {
    /// Suite the benchmark belongs to (`device`, `circuit`, ...).
    pub suite: String,
    /// Benchmark name (stable across runs; used as the JSON key).
    pub name: String,
    /// Total iterations executed during measurement.
    pub iters: u64,
    /// Median per-iteration time \[ns\].
    pub median_ns: f64,
    /// 10th-percentile per-iteration time \[ns\].
    pub p10_ns: f64,
    /// 90th-percentile per-iteration time \[ns\].
    pub p90_ns: f64,
    /// Mean per-iteration time \[ns\].
    pub mean_ns: f64,
    /// Fastest batch \[ns/iter\].
    pub min_ns: f64,
    /// Slowest batch \[ns/iter\].
    pub max_ns: f64,
}

impl Record {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("suite".into(), Json::from(self.suite.as_str())),
            ("name".into(), Json::from(self.name.as_str())),
            ("iters".into(), Json::Num(self.iters as f64)),
            ("median_ns".into(), Json::Num(self.median_ns)),
            ("p10_ns".into(), Json::Num(self.p10_ns)),
            ("p90_ns".into(), Json::Num(self.p90_ns)),
            ("mean_ns".into(), Json::Num(self.mean_ns)),
            ("min_ns".into(), Json::Num(self.min_ns)),
            ("max_ns".into(), Json::Num(self.max_ns)),
        ])
    }
}

/// Collects benchmark registrations and runs the ones matching the filter.
pub struct Harness {
    opts: BenchOptions,
    filter: Option<String>,
    list_only: bool,
    quiet: bool,
    records: Vec<Record>,
    listed: Vec<String>,
}

/// Linear-interpolated percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

impl Harness {
    /// Creates a harness; `filter` keeps only benchmarks whose
    /// `suite/name` path contains the substring.
    pub fn new(opts: BenchOptions, filter: Option<String>, list_only: bool, quiet: bool) -> Self {
        Harness {
            opts,
            filter,
            list_only,
            quiet,
            records: Vec::new(),
            listed: Vec::new(),
        }
    }

    fn selected(&self, suite: &str, name: &str) -> bool {
        match &self.filter {
            Some(f) => format!("{suite}/{name}").contains(f.as_str()),
            None => true,
        }
    }

    /// Registers and (unless listing/filtered out) runs one benchmark.
    /// The closure's return value is passed through `black_box` so the
    /// optimizer cannot elide the measured work.
    pub fn bench<R, F: FnMut() -> R>(&mut self, suite: &str, name: &str, mut f: F) {
        if !self.selected(suite, name) {
            return;
        }
        if self.list_only {
            self.listed.push(format!("{suite}/{name}"));
            return;
        }
        if !self.quiet {
            eprint!("{suite}/{name} ... ");
        }

        // Warmup: run until the budget elapses, tracking the iteration count
        // to estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.opts.warmup || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Batch size: spread the measurement budget over `samples` batches.
        let batch_budget_ns = self.opts.measure.as_nanos() as f64 / self.opts.samples.max(1) as f64;
        let iters_per_batch = ((batch_budget_ns / est_ns).floor() as u64).max(1);

        let mut per_iter_ns = Vec::with_capacity(self.opts.samples);
        let mut total_iters = 0u64;
        for _ in 0..self.opts.samples.max(2) {
            let t0 = Instant::now();
            for _ in 0..iters_per_batch {
                std::hint::black_box(f());
            }
            per_iter_ns.push(t0.elapsed().as_nanos() as f64 / iters_per_batch as f64);
            total_iters += iters_per_batch;
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        let record = Record {
            suite: suite.to_string(),
            name: name.to_string(),
            iters: total_iters,
            median_ns: percentile(&per_iter_ns, 50.0),
            p10_ns: percentile(&per_iter_ns, 10.0),
            p90_ns: percentile(&per_iter_ns, 90.0),
            mean_ns: mean,
            min_ns: per_iter_ns[0],
            max_ns: *per_iter_ns.last().expect("samples >= 2"),
        };
        if !self.quiet {
            eprintln!(
                "median {}  (p10 {}, p90 {}, {} iters)",
                fmt_ns(record.median_ns),
                fmt_ns(record.p10_ns),
                fmt_ns(record.p90_ns),
                record.iters
            );
        }
        self.records.push(record);
    }

    /// Completed records, in registration order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Names collected in `--list` mode.
    pub fn listed(&self) -> &[String] {
        &self.listed
    }

    /// Renders all records as the machine-readable JSON document.
    /// `hardware` is the host tag `bench-compare` keys its skip logic on;
    /// `telemetry` (when armed) embeds the run's solver counters so the
    /// gate can flag iteration-count drift.
    pub fn to_json(&self, quick: bool, hardware: &str, telemetry: Option<Json>) -> Json {
        let mut pairs = vec![
            ("schema".into(), Json::from("gnr-bench/v1")),
            ("quick".into(), Json::Bool(quick)),
            (
                "host".into(),
                Json::Obj(vec![("hardware".into(), Json::from(hardware))]),
            ),
            (
                "benches".into(),
                Json::Arr(self.records.iter().map(Record::to_json).collect()),
            ),
        ];
        if let Some(t) = telemetry {
            pairs.push(("telemetry".into(), t));
        }
        Json::Obj(pairs)
    }

    /// Renders all records as an aligned human-readable table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .records
            .iter()
            .map(|r| r.suite.len() + r.name.len() + 1)
            .max()
            .unwrap_or(8)
            .max(9);
        out.push_str(&format!(
            "{:width$}  {:>12}  {:>12}  {:>12}\n",
            "benchmark", "median", "p10", "p90"
        ));
        for r in &self.records {
            out.push_str(&format!(
                "{:width$}  {:>12}  {:>12}  {:>12}\n",
                format!("{}/{}", r.suite, r.name),
                fmt_ns(r.median_ns),
                fmt_ns(r.p10_ns),
                fmt_ns(r.p90_ns),
            ));
        }
        out
    }
}

/// Human-readable duration from nanoseconds.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert!((percentile(&xs, 25.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bench_records_and_json_shape() {
        let mut h = Harness::new(BenchOptions::quick(), None, false, true);
        h.bench("unit", "spin", || std::hint::black_box(3u64.pow(7)));
        assert_eq!(h.records().len(), 1);
        let r = &h.records()[0];
        assert!(r.median_ns > 0.0 && r.p10_ns <= r.median_ns && r.median_ns <= r.p90_ns);
        let doc = h.to_json(true, "test-cpu x2", None);
        let text = doc.dump();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("schema").unwrap().as_str(), Some("gnr-bench/v1"));
        assert_eq!(back.get("benches").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(
            back.get("host").unwrap().get("hardware").unwrap().as_str(),
            Some("test-cpu x2")
        );
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut h = Harness::new(BenchOptions::quick(), Some("nope".into()), false, true);
        h.bench("unit", "spin", || 1 + 1);
        assert!(h.records().is_empty());
    }

    #[test]
    fn list_mode_collects_names_without_running() {
        let mut h = Harness::new(BenchOptions::quick(), None, true, true);
        h.bench("unit", "spin", || panic!("must not run"));
        assert_eq!(h.listed(), ["unit/spin"]);
    }
}
