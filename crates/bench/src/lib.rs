//! Criterion benches live in benches/; this lib is intentionally empty.
