//! One bench per paper table/figure: each target exercises the complete
//! harness that regenerates the corresponding artifact, at reduced size so
//! the suite finishes in minutes. The full-fidelity artifacts are produced
//! by the `gnrfet-explore` binaries (fig2..fig7, table1..table4).

use crate::harness::Harness;
use gnr_cmos::CmosNode;
use gnr_device::{ChargeImpurity, DeviceConfig, SbfetModel};
use gnr_num::par::ExecCtx;
use gnrfet_explore::comparison::cmos_row;
use gnrfet_explore::contours::design_space_map;
use gnrfet_explore::devices::{ArrayScenario, DeviceLibrary, DeviceVariant, Fidelity};
use gnrfet_explore::latch::latch_study;
use gnrfet_explore::monte_carlo::{characterize_stage_universe, monte_carlo_from_universe};
use gnrfet_explore::variability::{inverter_figures, variability_table};
use std::hint::black_box;

const SUITE: &str = "experiments";

pub fn register(h: &mut Harness) {
    let cfg = DeviceConfig::test_small(12).expect("valid");
    let model = SbfetModel::new(&cfg).expect("builds");
    h.bench(SUITE, "fig2_iv_sweep_31pts_4vd", || {
        let mut acc = 0.0;
        for vd in [0.05, 0.25, 0.5, 0.75] {
            for i in 0..=30 {
                acc += model
                    .drain_current(i as f64 * 0.025, vd)
                    .expect("evaluates");
            }
        }
        black_box(acc)
    });

    let mut lib = DeviceLibrary::new(Fidelity::Fast);
    // Warm the table cache outside the timed region.
    let ctx = ExecCtx::serial();
    let _ = design_space_map(&ctx, &mut lib, &[0.4], &[0.1], 15).expect("warms");
    h.bench(SUITE, "fig3_design_space_2x2", || {
        black_box(design_space_map(&ctx, &mut lib, &[0.35, 0.45], &[0.08, 0.14], 15).expect("maps"))
    });

    h.bench(SUITE, "table1_cmos_row_full_ro", || {
        black_box(cmos_row(CmosNode::N22, 0.8, 15).expect("measures"))
    });

    let models: Vec<SbfetModel> = [9usize, 12]
        .iter()
        .map(|&n| SbfetModel::new(&DeviceConfig::test_small(n).expect("valid")).expect("builds"))
        .collect();
    h.bench(SUITE, "fig4_width_iv_2widths", || {
        let mut acc = 0.0;
        for m in &models {
            for i in 0..=16 {
                acc += m.drain_current(i as f64 * 0.05, 0.5).expect("evaluates");
            }
        }
        black_box(acc)
    });

    h.bench(SUITE, "fig5_impurity_model_build", || {
        black_box(
            SbfetModel::with_impurities(&cfg, &[ChargeImpurity::near_source(-2.0)])
                .expect("builds"),
        )
    });

    let axis2: Vec<(String, usize, f64)> = vec![("N=9".into(), 9, 0.0), ("N=18".into(), 18, 0.0)];
    let _ = variability_table(&ctx, &mut lib, &axis2, &axis2, 0.4).expect("warms");
    h.bench(SUITE, "table2_width_2x2", || {
        black_box(variability_table(&ctx, &mut lib, &axis2, &axis2, 0.4).expect("tables"))
    });
    let axis3: Vec<(String, usize, f64)> = vec![("-2q".into(), 12, -2.0), ("+2q".into(), 12, 2.0)];
    let _ = variability_table(&ctx, &mut lib, &axis3, &axis3, 0.4).expect("warms");
    h.bench(SUITE, "table3_impurity_2x2", || {
        black_box(variability_table(&ctx, &mut lib, &axis3, &axis3, 0.4).expect("tables"))
    });
    let axis4: Vec<(String, usize, f64)> =
        vec![("9,+q".into(), 9, 1.0), ("18,-q".into(), 18, -1.0)];
    let _ = variability_table(&ctx, &mut lib, &axis4, &axis4, 0.4).expect("warms");
    h.bench(SUITE, "table4_combined_2x2", || {
        black_box(variability_table(&ctx, &mut lib, &axis4, &axis4, 0.4).expect("tables"))
    });

    // Characterize a reduced universe proxy via the full API once, then
    // bench the sampling composition.
    let universe = characterize_stage_universe(&ctx, &mut lib, 0.4, 15).expect("characterizes");
    h.bench(SUITE, "fig6_monte_carlo_10k_samples", || {
        black_box(monte_carlo_from_universe(&ctx, &universe, 10_000, 7))
    });
    // Also bench one stage characterization (the expensive phase's unit).
    let shift = lib.min_leakage_shift(0.4).expect("shift");
    h.bench(SUITE, "fig6_stage_characterization_unit", || {
        black_box(
            inverter_figures(
                &ctx,
                &mut lib,
                DeviceVariant::width(9, ArrayScenario::AllFour),
                DeviceVariant::nominal(),
                0.4,
                shift,
                Some(5e9),
            )
            .expect("measures"),
        )
    });

    let _ = latch_study(&ctx, &mut lib, 0.4).expect("warms");
    h.bench(SUITE, "fig7_latch_three_cases", || {
        black_box(latch_study(&ctx, &mut lib, 0.4).expect("studies"))
    });
}
