//! `bench-compare`: diffs a `gnr-bench --json` run against a checked-in
//! baseline (`results/bench_baseline.json`).
//!
//! Policy (the CI perf gate):
//!
//! - **Fail** when a benchmark's median regresses by more than the timing
//!   tolerance (default 25%).
//! - **Warn only** on telemetry counter drift (iteration counts moving is
//!   a signal to investigate, not an automatic failure — convergence
//!   changes are often intentional) and on added/removed benchmarks.
//! - **Skip** (exit 0) when the baseline was recorded on different
//!   hardware: wall-clock medians from another machine gate nothing.

use gnr_num::{Json, TelemetrySnapshot};

/// Tolerances for one comparison.
#[derive(Clone, Copy, Debug)]
pub struct CompareOptions {
    /// Allowed fractional median regression before failing (0.25 = +25%).
    pub timing_tolerance: f64,
    /// Allowed fractional counter drift before warning (0.0 warns on any
    /// change).
    pub counter_tolerance: f64,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            timing_tolerance: 0.25,
            counter_tolerance: 0.0,
        }
    }
}

/// Outcome of one baseline comparison.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Set when the comparison was skipped entirely (hardware mismatch).
    pub skipped: Option<String>,
    /// Hard failures (timing regressions beyond tolerance).
    pub failures: Vec<String>,
    /// Warn-only findings (counter drift, added/removed benchmarks).
    pub warnings: Vec<String>,
    /// Benchmarks present in both documents.
    pub matched: usize,
}

impl CompareReport {
    /// `true` when the gate passes (skipped counts as a pass).
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(reason) = &self.skipped {
            out.push_str(&format!("bench-compare: SKIPPED ({reason})\n"));
            return out;
        }
        for w in &self.warnings {
            out.push_str(&format!("warning: {w}\n"));
        }
        for f in &self.failures {
            out.push_str(&format!("FAIL: {f}\n"));
        }
        out.push_str(&format!(
            "bench-compare: {} benchmark(s) compared, {} failure(s), {} warning(s)\n",
            self.matched,
            self.failures.len(),
            self.warnings.len()
        ));
        out
    }
}

/// The current host's hardware tag: CPU model and logical core count.
/// Bench baselines carry this tag so timing gates only ever compare
/// like-for-like machines.
pub fn hardware_tag() -> String {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| std::env::consts::ARCH.to_string());
    format!("{model} x{cores}")
}

fn host_tag(doc: &Json) -> Option<&str> {
    doc.get("host")?.get("hardware")?.as_str()
}

fn bench_entries(doc: &Json) -> Vec<(String, f64)> {
    doc.get("benches")
        .and_then(Json::as_array)
        .map(|benches| {
            benches
                .iter()
                .filter_map(|b| {
                    let suite = b.get("suite")?.as_str()?;
                    let name = b.get("name")?.as_str()?;
                    let median = b.get("median_ns")?.as_f64()?;
                    Some((format!("{suite}/{name}"), median))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn counters(doc: &Json) -> Vec<(String, u64)> {
    doc.get("telemetry")
        .and_then(|t| TelemetrySnapshot::from_json(t).ok())
        .map(|snap| snap.counters().map(|(k, v)| (k.to_string(), v)).collect())
        .unwrap_or_default()
}

/// Compares `current` against `baseline` (both `gnr-bench/v1` documents).
pub fn compare(baseline: &Json, current: &Json, opts: CompareOptions) -> CompareReport {
    let mut report = CompareReport::default();
    if let (Some(base_hw), Some(cur_hw)) = (host_tag(baseline), host_tag(current)) {
        if base_hw != cur_hw {
            report.skipped = Some(format!(
                "hardware tag mismatch: baseline {base_hw:?} vs current {cur_hw:?}"
            ));
            return report;
        }
    }
    let base = bench_entries(baseline);
    let cur = bench_entries(current);
    for (key, base_median) in &base {
        let Some((_, cur_median)) = cur.iter().find(|(k, _)| k == key) else {
            report
                .warnings
                .push(format!("benchmark {key} missing from current run"));
            continue;
        };
        report.matched += 1;
        if *base_median <= 0.0 {
            continue;
        }
        let change = (cur_median - base_median) / base_median;
        if change > opts.timing_tolerance {
            report.failures.push(format!(
                "{key}: median {:.0} ns -> {:.0} ns (+{:.1}%, tolerance {:.0}%)",
                base_median,
                cur_median,
                change * 100.0,
                opts.timing_tolerance * 100.0
            ));
        }
    }
    for (key, _) in &cur {
        if !base.iter().any(|(k, _)| k == key) {
            report
                .warnings
                .push(format!("benchmark {key} not in baseline (new?)"));
        }
    }
    // Iteration-count drift is warn-only: counters are deterministic, so a
    // change means solver behavior changed — worth a look, not a red build.
    let base_counters = counters(baseline);
    let cur_counters = counters(current);
    for (name, base_val) in &base_counters {
        let Some((_, cur_val)) = cur_counters.iter().find(|(k, _)| k == name) else {
            continue;
        };
        let drift = if *base_val == 0 {
            if *cur_val == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (*cur_val as f64 - *base_val as f64).abs() / *base_val as f64
        };
        if drift > opts.counter_tolerance {
            report
                .warnings
                .push(format!("counter {name} drifted: {base_val} -> {cur_val}"));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(hw: &str, median: f64, counter: u64) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::from("gnr-bench/v1")),
            (
                "host".into(),
                Json::Obj(vec![("hardware".into(), Json::from(hw))]),
            ),
            (
                "benches".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("suite".into(), Json::from("device")),
                    ("name".into(), Json::from("rgf")),
                    ("median_ns".into(), Json::Num(median)),
                ])]),
            ),
            (
                "telemetry".into(),
                Json::Obj(vec![
                    ("schema".into(), Json::from("gnr-telemetry/v1")),
                    (
                        "metrics".into(),
                        Json::Arr(vec![Json::Obj(vec![
                            ("name".into(), Json::from("scf.iterations")),
                            ("kind".into(), Json::from("counter")),
                            ("value".into(), Json::Num(counter as f64)),
                        ])]),
                    ),
                ]),
            ),
        ])
    }

    #[test]
    fn within_tolerance_passes() {
        let r = compare(
            &doc("cpu x4", 100.0, 10),
            &doc("cpu x4", 120.0, 10),
            CompareOptions::default(),
        );
        assert!(r.passed());
        assert_eq!(r.matched, 1);
        assert!(r.warnings.is_empty());
    }

    #[test]
    fn timing_regression_fails() {
        let r = compare(
            &doc("cpu x4", 100.0, 10),
            &doc("cpu x4", 130.0, 10),
            CompareOptions::default(),
        );
        assert!(!r.passed());
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("device/rgf"));
    }

    #[test]
    fn counter_drift_warns_but_passes() {
        let r = compare(
            &doc("cpu x4", 100.0, 10),
            &doc("cpu x4", 100.0, 12),
            CompareOptions::default(),
        );
        assert!(r.passed());
        assert_eq!(r.warnings.len(), 1);
        assert!(r.warnings[0].contains("scf.iterations"));
    }

    #[test]
    fn hardware_mismatch_skips() {
        let r = compare(
            &doc("cpu-a x4", 100.0, 10),
            &doc("cpu-b x8", 900.0, 99),
            CompareOptions::default(),
        );
        assert!(r.passed());
        assert!(r.skipped.is_some());
        assert_eq!(r.matched, 0);
    }

    #[test]
    fn hardware_tag_is_nonempty() {
        assert!(!hardware_tag().is_empty());
    }
}
