//! `bench-compare`: diffs a `gnr-bench --json` run against a checked-in
//! baseline (`results/bench_baseline.json`).
//!
//! Policy (the CI perf gate):
//!
//! - **Fail** when a benchmark's best-case time (`min_ns`) regresses by
//!   more than the timing tolerance (default 25%). The minimum is the
//!   gate statistic because scheduler noise and hypervisor CPU steal only
//!   ever *add* time: the fastest sample is the closest observation of
//!   the code's true cost, so a real regression moves it while a noisy
//!   neighbour on the host does not. (Baselines predating `min_ns` fall
//!   back to the median.)
//! - **Warn only** on telemetry counter drift (iteration counts moving is
//!   a signal to investigate, not an automatic failure — convergence
//!   changes are often intentional) and on added/removed benchmarks.
//! - **Skip** (exit 0) when the baseline was recorded on different
//!   hardware: wall-clock numbers from another machine gate nothing.

use gnr_num::{Json, TelemetrySnapshot};

/// Tolerances for one comparison.
#[derive(Clone, Copy, Debug)]
pub struct CompareOptions {
    /// Allowed fractional timing regression before failing (0.25 = +25%),
    /// measured on each benchmark's best-case (`min_ns`) sample.
    pub timing_tolerance: f64,
    /// Allowed fractional counter drift before warning (0.0 warns on any
    /// change).
    pub counter_tolerance: f64,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            timing_tolerance: 0.25,
            counter_tolerance: 0.0,
        }
    }
}

/// Outcome of one baseline comparison.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Set when the comparison was skipped entirely (hardware mismatch).
    pub skipped: Option<String>,
    /// Hard failures (timing regressions beyond tolerance).
    pub failures: Vec<String>,
    /// Warn-only findings (counter drift, added/removed benchmarks).
    pub warnings: Vec<String>,
    /// Benchmarks present in both documents.
    pub matched: usize,
}

impl CompareReport {
    /// `true` when the gate passes (skipped counts as a pass).
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(reason) = &self.skipped {
            out.push_str(&format!("bench-compare: SKIPPED ({reason})\n"));
            return out;
        }
        for w in &self.warnings {
            out.push_str(&format!("warning: {w}\n"));
        }
        for f in &self.failures {
            out.push_str(&format!("FAIL: {f}\n"));
        }
        out.push_str(&format!(
            "bench-compare: {} benchmark(s) compared, {} failure(s), {} warning(s)\n",
            self.matched,
            self.failures.len(),
            self.warnings.len()
        ));
        out
    }
}

/// The current host's hardware tag: CPU model and logical core count.
/// Bench baselines carry this tag so timing gates only ever compare
/// like-for-like machines.
pub fn hardware_tag() -> String {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| std::env::consts::ARCH.to_string());
    format!("{model} x{cores}")
}

fn host_tag(doc: &Json) -> Option<&str> {
    doc.get("host")?.get("hardware")?.as_str()
}

/// Timing stats extracted from one benchmark record.
#[derive(Clone, Copy, Debug)]
struct BenchStat {
    median_ns: f64,
    /// Absent from baselines recorded before `min_ns` was emitted.
    min_ns: Option<f64>,
}

impl BenchStat {
    /// The value the gate compares, plus its label for messages: the
    /// noise-robust minimum when available, the median otherwise.
    fn gate_value(&self, other: &BenchStat) -> (f64, f64, &'static str) {
        match (self.min_ns, other.min_ns) {
            (Some(a), Some(b)) => (a, b, "min"),
            _ => (self.median_ns, other.median_ns, "median"),
        }
    }
}

fn bench_entries(doc: &Json) -> Vec<(String, BenchStat)> {
    doc.get("benches")
        .and_then(Json::as_array)
        .map(|benches| {
            benches
                .iter()
                .filter_map(|b| {
                    let suite = b.get("suite")?.as_str()?;
                    let name = b.get("name")?.as_str()?;
                    let median_ns = b.get("median_ns")?.as_f64()?;
                    let min_ns = b.get("min_ns").and_then(Json::as_f64);
                    Some((format!("{suite}/{name}"), BenchStat { median_ns, min_ns }))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn counters(doc: &Json) -> Vec<(String, u64)> {
    doc.get("telemetry")
        .and_then(|t| TelemetrySnapshot::from_json(t).ok())
        .map(|snap| snap.counters().map(|(k, v)| (k.to_string(), v)).collect())
        .unwrap_or_default()
}

/// Compares `current` against `baseline` (both `gnr-bench/v1` documents).
pub fn compare(baseline: &Json, current: &Json, opts: CompareOptions) -> CompareReport {
    let mut report = CompareReport::default();
    if let (Some(base_hw), Some(cur_hw)) = (host_tag(baseline), host_tag(current)) {
        if base_hw != cur_hw {
            report.skipped = Some(format!(
                "hardware tag mismatch: baseline {base_hw:?} vs current {cur_hw:?}"
            ));
            return report;
        }
    }
    let base = bench_entries(baseline);
    let cur = bench_entries(current);
    for (key, base_stat) in &base {
        let Some((_, cur_stat)) = cur.iter().find(|(k, _)| k == key) else {
            report
                .warnings
                .push(format!("benchmark {key} missing from current run"));
            continue;
        };
        report.matched += 1;
        let (base_t, cur_t, stat) = base_stat.gate_value(cur_stat);
        if base_t <= 0.0 {
            continue;
        }
        let change = (cur_t - base_t) / base_t;
        if change > opts.timing_tolerance {
            report.failures.push(format!(
                "{key}: {stat} {:.0} ns -> {:.0} ns (+{:.1}%, tolerance {:.0}%)",
                base_t,
                cur_t,
                change * 100.0,
                opts.timing_tolerance * 100.0
            ));
        }
    }
    for (key, _) in &cur {
        if !base.iter().any(|(k, _)| k == key) {
            report
                .warnings
                .push(format!("benchmark {key} not in baseline (new?)"));
        }
    }
    // Iteration-count drift is warn-only: counters are deterministic, so a
    // change means solver behavior changed — worth a look, not a red build.
    let base_counters = counters(baseline);
    let cur_counters = counters(current);
    for (name, base_val) in &base_counters {
        let Some((_, cur_val)) = cur_counters.iter().find(|(k, _)| k == name) else {
            continue;
        };
        let drift = if *base_val == 0 {
            if *cur_val == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (*cur_val as f64 - *base_val as f64).abs() / *base_val as f64
        };
        if drift > opts.counter_tolerance {
            report
                .warnings
                .push(format!("counter {name} drifted: {base_val} -> {cur_val}"));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc_with_min(hw: &str, median: f64, min: Option<f64>, counter: u64) -> Json {
        let mut bench = vec![
            ("suite".into(), Json::from("device")),
            ("name".into(), Json::from("rgf")),
            ("median_ns".into(), Json::Num(median)),
        ];
        if let Some(m) = min {
            bench.push(("min_ns".into(), Json::Num(m)));
        }
        Json::Obj(vec![
            ("schema".into(), Json::from("gnr-bench/v1")),
            (
                "host".into(),
                Json::Obj(vec![("hardware".into(), Json::from(hw))]),
            ),
            ("benches".into(), Json::Arr(vec![Json::Obj(bench)])),
            (
                "telemetry".into(),
                Json::Obj(vec![
                    ("schema".into(), Json::from("gnr-telemetry/v1")),
                    (
                        "metrics".into(),
                        Json::Arr(vec![Json::Obj(vec![
                            ("name".into(), Json::from("scf.iterations")),
                            ("kind".into(), Json::from("counter")),
                            ("value".into(), Json::Num(counter as f64)),
                        ])]),
                    ),
                ]),
            ),
        ])
    }

    /// Legacy-shaped document: median only, no `min_ns`.
    fn doc(hw: &str, median: f64, counter: u64) -> Json {
        doc_with_min(hw, median, None, counter)
    }

    #[test]
    fn within_tolerance_passes() {
        let r = compare(
            &doc("cpu x4", 100.0, 10),
            &doc("cpu x4", 120.0, 10),
            CompareOptions::default(),
        );
        assert!(r.passed());
        assert_eq!(r.matched, 1);
        assert!(r.warnings.is_empty());
    }

    #[test]
    fn timing_regression_fails() {
        let r = compare(
            &doc("cpu x4", 100.0, 10),
            &doc("cpu x4", 130.0, 10),
            CompareOptions::default(),
        );
        assert!(!r.passed());
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("device/rgf"));
        // Median-only documents fall back to gating on the median.
        assert!(r.failures[0].contains("median"));
    }

    /// Host noise (steal, scheduler) inflates the median but never the
    /// minimum — the gate must stay green when the best case holds.
    #[test]
    fn noisy_median_with_stable_min_passes() {
        let r = compare(
            &doc_with_min("cpu x4", 100.0, Some(90.0), 10),
            &doc_with_min("cpu x4", 180.0, Some(95.0), 10),
            CompareOptions::default(),
        );
        assert!(r.passed(), "min within tolerance must gate green");
        assert_eq!(r.matched, 1);
    }

    #[test]
    fn min_regression_fails_even_with_flat_median() {
        let r = compare(
            &doc_with_min("cpu x4", 100.0, Some(60.0), 10),
            &doc_with_min("cpu x4", 100.0, Some(90.0), 10),
            CompareOptions::default(),
        );
        assert!(!r.passed());
        assert!(r.failures[0].contains("min"));
    }

    #[test]
    fn counter_drift_warns_but_passes() {
        let r = compare(
            &doc("cpu x4", 100.0, 10),
            &doc("cpu x4", 100.0, 12),
            CompareOptions::default(),
        );
        assert!(r.passed());
        assert_eq!(r.warnings.len(), 1);
        assert!(r.warnings[0].contains("scf.iterations"));
    }

    #[test]
    fn hardware_mismatch_skips() {
        let r = compare(
            &doc("cpu-a x4", 100.0, 10),
            &doc("cpu-b x8", 900.0, 99),
            CompareOptions::default(),
        );
        assert!(r.passed());
        assert!(r.skipped.is_some());
        assert_eq!(r.matched, 0);
    }

    #[test]
    fn hardware_tag_is_nonempty() {
        assert!(!hardware_tag().is_empty());
    }
}
