//! Ablation benches for the design choices called out in DESIGN.md §5:
//! RGF versus dense Green's-function inversion, the bilinear-table lookup
//! versus direct model evaluation, resistance folding versus explicit
//! internal nodes, and the SCF mixing-factor cost.

use crate::harness::Harness;
use gnr_device::table::TableGrid;
use gnr_device::{DeviceConfig, DeviceTable, Polarity, SbfetModel, ScfOptions, ScfSolver};
use gnr_lattice::{AGnr, DeviceHamiltonian};
use gnr_negf::{Lead, RgfSolver};
use gnr_num::budget::ExecLimits;
use gnr_num::par::{ExecCtx, ThreadPool};
use gnr_num::{c64, CMatrix};
use std::hint::black_box;

const SUITE: &str = "ablations";

/// RGF scales linearly in length; the dense inverse is cubic in the full
/// device dimension. This ablation shows why the paper's "efficient
/// computational algorithms" matter.
fn rgf_vs_dense(h: &mut Harness) {
    let gnr = AGnr::new(9).expect("valid");
    for cells in [4usize, 8] {
        let ham = DeviceHamiltonian::flat_band(gnr, cells).expect("builds");
        let solver = RgfSolver::new(&ham, Lead::metal(), Lead::metal());
        h.bench(SUITE, &format!("rgf_vs_dense/rgf/{cells}"), || {
            black_box(solver.transmission(black_box(0.8)).expect("solves"))
        });
        // Dense comparator: invert (E - H - Sigma) outright.
        let dense_h = ham.to_dense();
        h.bench(
            SUITE,
            &format!("rgf_vs_dense/dense_inverse/{cells}"),
            || {
                let n = dense_h.rows();
                let mut a = CMatrix::from_fn(n, n, |i, j| -dense_h.get(i, j));
                for i in 0..n {
                    a.add_to(i, i, c64(0.8, 1e-6));
                }
                // Wide-band contact broadening on the boundary layers.
                let m = gnr.atoms_per_cell();
                for i in 0..m {
                    a.add_to(i, i, c64(0.0, 0.25));
                    a.add_to(n - 1 - i, n - 1 - i, c64(0.0, 0.25));
                }
                black_box(a.inverse().expect("invertible"))
            },
        );
    }
}

/// Table lookup versus direct semi-analytic evaluation: the factor the
/// paper's "simulator based on table lookup techniques" buys per device
/// evaluation inside the circuit Newton loop.
fn table_vs_model(h: &mut Harness) {
    let cfg = DeviceConfig::test_small(12).expect("valid");
    let model = SbfetModel::new(&cfg).expect("builds");
    let grid = TableGrid {
        vgs: (-0.35, 1.0),
        vds: (0.0, 0.85),
        points: 21,
    };
    let table = DeviceTable::from_model(&ExecCtx::serial(), &model, Polarity::NType, grid, 4)
        .expect("table");
    h.bench(SUITE, "table_vs_model/bilinear_lookup", || {
        black_box(table.current(black_box(0.37), black_box(0.29)))
    });
    h.bench(SUITE, "table_vs_model/direct_model_eval", || {
        black_box(
            model
                .drain_current(black_box(0.37), black_box(0.29))
                .expect("evals"),
        )
    });

    // Folding the contact resistances into the table versus paying for
    // them at build time: fold cost amortizes over every lookup.
    h.bench(SUITE, "fold_series_resistance_21x21", || {
        black_box(table.fold_series_resistance(10e3, 10e3).expect("folds"))
    });
}

/// Integrator ablation: backward Euler versus trapezoidal on an RC
/// transient — same step count, different accuracy class.
fn integrator(h: &mut Harness) {
    use gnr_spice::circuit::{Circuit, Element, NodeId, Waveform};
    use gnr_spice::transient::{transient, Integrator, TransientOptions};
    let build = || {
        let mut c = Circuit::new();
        let vin = c.node("in");
        let out = c.node("out");
        c.add(Element::VSource {
            p: vin,
            n: NodeId::GROUND,
            wave: Waveform::Pulse {
                low: 0.0,
                high: 1.0,
                delay: 1e-10,
                rise: 2e-10,
                fall: 2e-10,
                width: 5e-10,
                period: 2e-9,
            },
        });
        c.add(Element::Resistor {
            a: vin,
            b: out,
            ohms: 1e3,
        });
        c.add(Element::Capacitor {
            a: out,
            b: NodeId::GROUND,
            farads: 1e-12,
        });
        c
    };
    for (label, integrator) in [
        ("backward_euler", Integrator::BackwardEuler),
        ("trapezoidal", Integrator::Trapezoidal),
    ] {
        let circuit = build();
        h.bench(SUITE, &format!("integrator/{label}"), move || {
            let mut opts = TransientOptions::new(2e-9, 1e-12);
            opts.integrator = integrator;
            black_box(transient(&ExecCtx::strict(), &circuit, &opts).expect("simulates"))
        });
    }
}

/// SCF damping ablation: convergence cost versus mixing factor on a tiny
/// device (the DESIGN.md "mixing" ablation).
fn scf_mixing(h: &mut Harness) {
    let mut cfg = DeviceConfig::test_small(9).expect("valid");
    cfg.channel_cells = 8;
    for mixing in [0.15, 0.3] {
        let opts = ScfOptions {
            mixing,
            ..ScfOptions::fast()
        };
        let solver = ScfSolver::new(&cfg, opts);
        h.bench(SUITE, &format!("scf_mixing/{mixing}"), move || {
            black_box(
                solver
                    .solve(&ExecCtx::strict(), 0.2, 0.2)
                    .expect("converges"),
            )
        });
    }
}

/// Recovery-ladder overhead: the escalation ladder wraps every SCF solve,
/// so its fault-free cost on a nominal bias point must stay negligible
/// (one extra report allocation; the nominal rung is the plain solve).
fn scf_recovery(h: &mut Harness) {
    let mut cfg = DeviceConfig::test_small(9).expect("valid");
    cfg.channel_cells = 8;
    let solver = ScfSolver::new(&cfg, ScfOptions::fast());
    h.bench(SUITE, "scf_recovery/direct", || {
        black_box(
            solver
                .solve(&ExecCtx::strict(), black_box(0.2), black_box(0.2))
                .expect("converges"),
        )
    });
    h.bench(SUITE, "scf_recovery/ladder", || {
        black_box(
            solver
                .solve(&ExecCtx::serial(), black_box(0.2), black_box(0.2))
                .expect("converges"),
        )
    });
}

/// Thread-pool scaling ablation: the same 21 x 21 bias-grid table build,
/// serial versus a 4-thread pool. The deterministic ordered merge must
/// still deliver real speedup on a multi-core host (target: >= 2x at
/// 4 threads with >= 4 cores) or the parallel execution API is pure
/// overhead. On a single-core host the two medians should instead
/// coincide — that reading pins the pool's dispatch/merge overhead at
/// effectively zero.
fn par_scaling(h: &mut Harness) {
    let cfg = DeviceConfig::test_small(12).expect("valid");
    let model = SbfetModel::new(&cfg).expect("builds");
    let grid = TableGrid {
        vgs: (-0.35, 1.0),
        vds: (0.0, 0.85),
        points: 21,
    };
    for (label, threads) in [("serial", 1usize), ("threads4", 4)] {
        let ctx = ExecCtx::new(ThreadPool::new(threads), Default::default());
        h.bench(SUITE, &format!("par_scaling/from_model/{label}"), || {
            black_box(
                DeviceTable::from_model(&ctx, &model, Polarity::NType, grid, 4).expect("table"),
            )
        });
    }
}

/// The bias-sweep NEGF table build — the headline ablation for the
/// transport acceleration layer (DESIGN.md §11). `legacy` pays fresh
/// Sancho–Rubio decimations at every energy of a dense uniform grid for
/// every bias point; `accelerated` shares a surface-GF cache across the
/// sweep and refines a 4x-coarser grid only where T(E) has structure.
/// Gate target: accelerated median >= 2x faster, with every table I-V
/// node within 1e-6 A of legacy (pinned by the gnr-device tests).
fn device_table(h: &mut Harness) {
    use gnr_device::{ballistic_negf_table, NegfTableOptions};
    let mut cfg = DeviceConfig::test_small(9).expect("valid");
    cfg.channel_cells = 6;
    let model = SbfetModel::new(&cfg).expect("builds");
    let grid = TableGrid {
        vgs: (0.0, 0.6),
        vds: (0.05, 0.35),
        points: 3,
    };
    let ctx = ExecCtx::new(ThreadPool::new(4), Default::default());
    for (label, opts) in [
        ("legacy", NegfTableOptions::legacy()),
        ("accelerated", NegfTableOptions::accelerated()),
    ] {
        h.bench(SUITE, &format!("device_table/{label}"), || {
            black_box(
                ballistic_negf_table(&ctx, &model, Polarity::NType, grid, 4, &opts).expect("table"),
            )
        });
    }
}

/// Mode-space NEGF (DESIGN.md §15): the same bias-sweep table build as
/// `device_table`, with the accelerated real-space path against the
/// reduced mode-space path. The transform keeps only the transverse modes
/// whose bands can reach the transport window, so every RGF block solve
/// and Sancho–Rubio decimation runs on k x k instead of m x m blocks.
/// Gate target: mode-space median >= 5x faster than the accelerated
/// real-space build, with every I-V node within 1e-6 A (pinned by the
/// gnr-device tests and the negf_vs_surrogate suite). Same N = 9 device
/// as `device_table`, so the two ablations compose into one story:
/// legacy -> cache+refine -> mode-space. Runs on the serial context so
/// the ratio measures the solver algorithms, not pool dispatch: the
/// reduced k x k blocks make each energy point so cheap that per-batch
/// thread spawns would dominate the mode-space side of the comparison
/// (`par_scaling` is the ablation that characterizes pool overhead).
/// The bias grid is denser than `device_table`'s (4x4, the sweep regime
/// both solver paths are built for) so the per-energy-point cost — where
/// the k x k reduction lives — dominates the one-time per-build setup.
fn mode_space(h: &mut Harness) {
    use gnr_device::{ballistic_negf_table, NegfTableOptions};
    let mut cfg = DeviceConfig::test_small(9).expect("valid");
    cfg.channel_cells = 6;
    let model = SbfetModel::new(&cfg).expect("builds");
    let grid = TableGrid {
        vgs: (0.0, 0.6),
        vds: (0.05, 0.35),
        points: 4,
    };
    let ctx = ExecCtx::serial();
    for (label, opts) in [
        ("real_space", NegfTableOptions::accelerated()),
        ("mode_space", NegfTableOptions::mode_space()),
    ] {
        h.bench(SUITE, &format!("mode_space/{label}"), || {
            black_box(
                ballistic_negf_table(&ctx, &model, Polarity::NType, grid, 4, &opts).expect("table"),
            )
        });
    }
}

/// Content-addressed table cache (DESIGN.md §14): a cold NEGF table
/// build versus a warm store hit serving the same request from its
/// canonical JSON. The warm path is one FNV-1a key, one map probe, and
/// one JSON parse, so the gate target is steep: warm median >= 50x
/// faster than cold, with the hit byte-identical to the cold build
/// (pinned by the `table_cache` test suite).
fn table_cache(h: &mut Harness) {
    use gnr_device::{ballistic_negf_table, NegfTableOptions, TableKey, TableStore};
    let mut cfg = DeviceConfig::test_small(9).expect("valid");
    cfg.channel_cells = 6;
    let model = SbfetModel::new(&cfg).expect("builds");
    let grid = TableGrid {
        vgs: (0.0, 0.6),
        vds: (0.05, 0.35),
        points: 3,
    };
    let ctx = ExecCtx::new(ThreadPool::new(4), Default::default());
    let opts = NegfTableOptions::accelerated();
    // The full request key is recomputed per iteration: the warm number
    // is the end-to-end cost of a cache hit, not just the map probe.
    let key = |cfg: &DeviceConfig, opts: &NegfTableOptions| {
        TableKey::new("bench-table-cache")
            .device(cfg)
            .grid(&grid)
            .polarity(Polarity::NType)
            .ribbons(4)
            .negf(opts)
            .finish()
    };
    h.bench(SUITE, "table_cache/cold_build", || {
        black_box(
            ballistic_negf_table(&ctx, &model, Polarity::NType, grid, 4, &opts).expect("table"),
        )
    });
    let store = TableStore::in_memory();
    store
        .get_or_build(key(&cfg, &opts), || {
            ballistic_negf_table(&ctx, &model, Polarity::NType, grid, 4, &opts)
        })
        .expect("prime the store");
    h.bench(SUITE, "table_cache/warm_hit", || {
        black_box(
            store
                .get_or_build(key(&cfg, &opts), || -> Result<DeviceTable, _> {
                    unreachable!("the warm run must hit")
                })
                .expect("hit"),
        )
    });
}

/// Sparse versus dense MNA (DESIGN.md §12): the KLU-style solver pays a
/// one-time symbolic analysis per circuit and a cheap pattern-replay
/// refactor per Newton step, versus the legacy dense assembly + O(n³) LU
/// every step. Gate target: sparse median >= 2x faster on the resistor
/// meshes (>= 50 unknowns), with solutions pinned within 1e-12 of dense
/// by the `sparse_mna` test suite.
fn sparse_mna(h: &mut Harness) {
    use gnr_spice::circuit::{Circuit, Element, NodeId, Waveform};
    use gnr_spice::dc::{dc_operating_point, DcOptions};
    use gnr_spice::transient::{transient, TransientOptions};
    use gnr_spice::MnaSolverKind;

    // Large resistor-mesh DC op: a k x k grid bridged corner-to-corner,
    // k^2 + 1 unknowns.
    let mesh = |k: usize| -> Circuit {
        let mut c = Circuit::new();
        let nodes: Vec<Vec<NodeId>> = (0..k)
            .map(|i| (0..k).map(|j| c.node(&format!("n{i}_{j}"))).collect())
            .collect();
        for i in 0..k {
            for j in 0..k {
                if i + 1 < k {
                    c.add(Element::Resistor {
                        a: nodes[i][j],
                        b: nodes[i + 1][j],
                        ohms: 1e3 + (i * k + j) as f64,
                    });
                }
                if j + 1 < k {
                    c.add(Element::Resistor {
                        a: nodes[i][j],
                        b: nodes[i][j + 1],
                        ohms: 1.5e3 + (i + j) as f64,
                    });
                }
            }
        }
        c.add(Element::VSource {
            p: nodes[0][0],
            n: NodeId::GROUND,
            wave: Waveform::Dc(1.0),
        });
        c.add(Element::Resistor {
            a: nodes[k - 1][k - 1],
            b: NodeId::GROUND,
            ohms: 2e3,
        });
        c
    };
    for k in [8usize, 16] {
        let c = mesh(k);
        for (label, solver) in [
            ("dense", MnaSolverKind::Dense),
            ("sparse", MnaSolverKind::Sparse),
        ] {
            let opts = DcOptions {
                solver,
                ..DcOptions::default()
            };
            let circuit = c.clone();
            h.bench(
                SUITE,
                &format!("sparse_mna/mesh_dc/k{k}/{label}"),
                move || {
                    black_box(
                        dc_operating_point(&circuit, None, opts, &ExecLimits::none())
                            .expect("solves"),
                    )
                },
            );
        }
    }

    // 9-stage ring-oscillator transient on surrogate lookup-table FETs:
    // per-step Newton with gm/gds table lookups, where the residual-only
    // line search and the pattern-replay refactor both show up.
    let grid = TableGrid {
        vgs: (-0.3, 0.9),
        vds: (0.0, 0.9),
        points: 9,
    };
    let nfet = DeviceTable::from_samples(
        grid,
        Polarity::NType,
        |vg, vd| {
            let vov = (vg - 0.2).max(0.0);
            4e-5 * vov * vov * (vd / 0.08).tanh() + 1e-9 * vd
        },
        |vg, _| 2e-16 * vg,
    )
    .expect("surrogate nfet");
    let pfet = nfet.mirrored();
    let vdd = 0.8;
    let mut ro = Circuit::new();
    let vdd_node = ro.node("vdd");
    ro.add(Element::VSource {
        p: vdd_node,
        n: NodeId::GROUND,
        wave: Waveform::Dc(vdd),
    });
    let stages = 9usize;
    let outs: Vec<NodeId> = (0..stages).map(|i| ro.node(&format!("s{i}"))).collect();
    let nfet = std::sync::Arc::new(nfet);
    let pfet = std::sync::Arc::new(pfet);
    for i in 0..stages {
        let inp = outs[(i + stages - 1) % stages];
        ro.add(Element::Fet {
            d: outs[i],
            g: inp,
            s: vdd_node,
            table: pfet.clone(),
        });
        ro.add(Element::Fet {
            d: outs[i],
            g: inp,
            s: NodeId::GROUND,
            table: nfet.clone(),
        });
        ro.add(Element::Capacitor {
            a: outs[i],
            b: NodeId::GROUND,
            farads: 5e-16,
        });
    }
    for (label, solver) in [
        ("dense", MnaSolverKind::Dense),
        ("sparse", MnaSolverKind::Sparse),
    ] {
        let circuit = ro.clone();
        let kick = outs[0];
        h.bench(
            SUITE,
            &format!("sparse_mna/ro9_transient/{label}"),
            move || {
                let mut opts = TransientOptions::new(2e-10, 2e-12);
                opts.newton.solver = solver;
                opts.skip_dc = true;
                opts.initial_voltages = vec![(kick, vdd)];
                black_box(transient(&ExecCtx::strict(), &circuit, &opts).expect("simulates"))
            },
        );
    }
}

/// Netlist front end on generated workloads (DESIGN.md §16): deck text →
/// parse → subcircuit flattening at growing NAND-tree widths, then the
/// elaborated circuit's DC operating point dense versus sparse. This is
/// the deck-path counterpart to `sparse_mna`, with the parser and
/// elaborator inside the measured region.
fn circuit_zoo(h: &mut Harness) {
    use gnr_spice::dc::{dc_operating_point, DcOptions};
    use gnr_spice::{parse_deck, MnaSolverKind, ModelBindings};

    // A balanced tree of nand2 subcircuit instances reducing `width`
    // driven inputs to one output: ~width gates, ~3*width nodes after
    // flattening.
    let nand_tree_deck = |width: usize| -> String {
        let mut d = String::new();
        d.push_str(&format!("* bench: balanced nand tree, {width} inputs\n"));
        d.push_str(".model nmos surrogate polarity=n\n");
        d.push_str(".model pmos surrogate polarity=p\n");
        d.push_str(".subckt nand2 a b out vdd\n");
        d.push_str("mn1 out a mid nmos\nmn2 mid b 0 nmos\n");
        d.push_str("mp1 out a vdd pmos\nmp2 out b vdd pmos\n");
        d.push_str("cl out 0 5e-17\n.ends\n");
        d.push_str("vdd vdd 0 dc 0.8\n");
        for j in 0..width {
            d.push_str(&format!("vi{j} l0_{j} 0 dc 0.8\n"));
        }
        let (mut level, mut w) = (0usize, width);
        while w > 1 {
            for j in 0..w / 2 {
                d.push_str(&format!(
                    "x{level}_{j} l{level}_{a} l{level}_{b} l{next}_{j} vdd nand2\n",
                    a = 2 * j,
                    b = 2 * j + 1,
                    next = level + 1
                ));
            }
            level += 1;
            w /= 2;
        }
        d.push_str(".op\n.end\n");
        d
    };

    for width in [8usize, 32] {
        let text = nand_tree_deck(width);
        h.bench(
            SUITE,
            &format!("circuit_zoo/parse_elaborate/nand_tree_{width}"),
            || {
                black_box(
                    parse_deck(black_box(&text))
                        .expect("parse")
                        .elaborate(&ModelBindings::new())
                        .expect("elaborate"),
                )
            },
        );
        let elab = parse_deck(&text)
            .expect("parse")
            .elaborate(&ModelBindings::new())
            .expect("elaborate");
        for (label, solver) in [
            ("dense", MnaSolverKind::Dense),
            ("sparse", MnaSolverKind::Sparse),
        ] {
            let circuit = elab.circuit.clone();
            let opts = DcOptions {
                solver,
                ..DcOptions::default()
            };
            h.bench(
                SUITE,
                &format!("circuit_zoo/dc/nand_tree_{width}/{label}"),
                move || {
                    black_box(
                        dc_operating_point(&circuit, None, opts, &ExecLimits::none())
                            .expect("solves"),
                    )
                },
            );
        }
    }
}

pub fn register(h: &mut Harness) {
    rgf_vs_dense(h);
    table_vs_model(h);
    integrator(h);
    scf_mixing(h);
    scf_recovery(h);
    par_scaling(h);
    device_table(h);
    mode_space(h);
    table_cache(h);
    sparse_mna(h);
    circuit_zoo(h);
}
