//! Benchmarks of the device-level kernels: band structure, contact
//! self-energies, RGF transmission, 3D Poisson solves, and the
//! semi-analytic SBFET evaluation that feeds table construction.

use crate::harness::Harness;
use gnr_device::{DeviceConfig, SbfetModel};
use gnr_lattice::{unit_cell_hamiltonian, AGnr, DeviceHamiltonian, ZGnr};
use gnr_negf::lead::surface_gf;
use gnr_negf::{Lead, RgfSolver};
use gnr_num::budget::ExecLimits;
use gnr_poisson::{Grid3, PoissonProblem, Region};
use std::hint::black_box;

const SUITE: &str = "device";

pub fn register(h: &mut Harness) {
    let gnr = AGnr::new(12).expect("valid index");
    h.bench(SUITE, "band_structure_n12_64k", || {
        black_box(gnr.band_structure(64).expect("bands solve"))
    });

    let z = ZGnr::new(8).expect("valid index");
    h.bench(SUITE, "zigzag_band_structure_n8_64k", || {
        black_box(z.band_structure(64).expect("solves"))
    });

    let (h00, h01) = unit_cell_hamiltonian(gnr);
    h.bench(SUITE, "sancho_rubio_surface_gf_24x24", || {
        black_box(
            surface_gf(black_box(0.9), &h00, &h01, 1e-5, 200, &ExecLimits::none())
                .expect("converges"),
        )
    });

    let ham = DeviceHamiltonian::flat_band(gnr, 12).expect("builds");
    let solver = RgfSolver::new(&ham, Lead::metal(), Lead::metal());
    h.bench(SUITE, "rgf_transmission_12layers", || {
        black_box(solver.transmission(black_box(0.7)).expect("solves"))
    });
    h.bench(SUITE, "rgf_spectral_slice_12layers", || {
        black_box(
            solver
                .spectral_slice(black_box(0.7), &ExecLimits::none())
                .expect("solves"),
        )
    });

    let grid = Grid3::new(40, 12, 12, 0.5).expect("valid grid");
    let mut p = PoissonProblem::new(grid);
    p.set_electrode(Region::slab_x(0, 0), 0.0);
    p.set_electrode(Region::slab_x(39, 39), 0.5);
    p.set_dielectric(Region::new((1, 38), (0, 11), (0, 11)), 3.9);
    p.add_point_charge(5.0, 3.0, 3.0, 1.0);
    h.bench(SUITE, "poisson_cg_5760_cells_cold", || {
        black_box(p.solve(None, &ExecLimits::none()).expect("solves"))
    });
    let warm = p.solve(None, &ExecLimits::none()).expect("solves");
    h.bench(SUITE, "poisson_cg_5760_cells_warm", || {
        black_box(
            p.solve(Some(warm.raw()), &ExecLimits::none())
                .expect("solves"),
        )
    });

    let cfg = DeviceConfig::test_small(12).expect("valid");
    h.bench(SUITE, "sbfet_model_build", || {
        black_box(SbfetModel::new(&cfg).expect("builds"))
    });
    let model = SbfetModel::new(&cfg).expect("builds");
    h.bench(SUITE, "sbfet_bias_point_eval", || {
        black_box(
            model
                .evaluate(black_box(0.45), black_box(0.4))
                .expect("evaluates"),
        )
    });
}
