//! Benchmarks of the circuit-level kernels: DC operating points, transfer
//! curves, FO4 transients, ring-oscillator transients, and the butterfly
//! SNM extraction.

use crate::harness::Harness;
use gnr_device::table::TableGrid;
use gnr_device::{DeviceConfig, DeviceTable, Polarity, SbfetModel};
use gnr_spice::builders::{ExtrinsicParasitics, InverterCell, RingOscillator};
use gnr_spice::measure::{
    butterfly_snm, fo4_metrics_for_cell, inverter_static_power, inverter_vtc,
    ring_oscillator_metrics,
};
use std::hint::black_box;

const SUITE: &str = "circuit";

fn nominal_cell() -> (InverterCell, f64) {
    let cfg = DeviceConfig::test_small(12).expect("valid");
    let model = SbfetModel::new(&cfg).expect("builds");
    let vmin = model.minimum_leakage_vg(0.4).expect("minimum");
    let grid = TableGrid {
        vgs: (-0.35, 1.0),
        vds: (0.0, 0.85),
        points: 21,
    };
    let n = DeviceTable::from_model(
        &gnr_num::par::ExecCtx::serial(),
        &model,
        Polarity::NType,
        grid,
        4,
    )
    .expect("table")
    .with_vg_shift(-vmin);
    let p = n.mirrored();
    (
        InverterCell::new(&n, &p, &ExtrinsicParasitics::nominal()).expect("cell"),
        0.4,
    )
}

pub fn register(h: &mut Harness) {
    let (cell, vdd) = nominal_cell();

    h.bench(SUITE, "inverter_static_power_dc", || {
        black_box(inverter_static_power(&cell, vdd).expect("solves"))
    });
    h.bench(SUITE, "inverter_vtc_33pts", || {
        black_box(inverter_vtc(&cell, vdd, 33).expect("sweeps"))
    });

    let vtc = inverter_vtc(&cell, vdd, 41).expect("sweeps");
    h.bench(SUITE, "butterfly_snm_maxsquare_dp", || {
        black_box(butterfly_snm(&vtc, &vtc, vdd))
    });

    h.bench(SUITE, "fo4_inverter_transient", || {
        black_box(fo4_metrics_for_cell(&cell, vdd).expect("measures"))
    });
    let inv = fo4_metrics_for_cell(&cell, vdd).expect("measures");
    let ro = RingOscillator::uniform(&cell, 15, vdd).expect("builds");
    h.bench(SUITE, "ring_oscillator_15stage_transient", || {
        black_box(
            ring_oscillator_metrics(&ro, inv.delay_s, inv.static_power_w).expect("oscillates"),
        )
    });

    h.bench(SUITE, "table_lookup_current_gm_gds", || {
        let t = &cell.nfet;
        black_box((
            t.current(black_box(0.31), black_box(0.22)),
            t.gm(0.31, 0.22),
            t.gds(0.31, 0.22),
        ))
    });
}
