#!/usr/bin/env bash
# Perf-regression gate: runs the quick ablation benches with telemetry
# armed and diffs the result against the checked-in baseline.
#
# Policy (implemented by `gnr-bench compare`):
#   - fail (exit 1) on a >25% best-case (min_ns) timing regression —
#     the minimum is noise-robust: host steal only ever adds time,
#   - warn only on solver iteration-count drift and bench set changes,
#   - skip (exit 0) when the baseline's hardware tag does not match this
#     host — wall-clock numbers from another machine gate nothing.
#
# Usage: scripts/bench_gate.sh [--refresh] [output.json]
#   --refresh     rewrite results/bench_baseline.json from a fresh quick
#                 run on THIS host (its hardware tag is recorded, so the
#                 gate self-skips everywhere else) and exit — the one
#                 command to run after an intentional perf change
#   output.json   where to write the current run's report
#                 (default: target/bench_current.json; CI uploads it)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=results/bench_baseline.json

if [ "${1:-}" = "--refresh" ]; then
  echo "== bench gate: refreshing $BASELINE (quick run, telemetry armed) =="
  GNR_TELEMETRY=1 cargo run -p gnr-bench --release --offline -- \
    --suite ablations --quick --json > "$BASELINE"
  tag=$(sed -n 's/.*"hardware":"\([^"]*\)".*/\1/p' "$BASELINE")
  echo "bench_gate: baseline refreshed for host '$tag' — commit $BASELINE"
  exit 0
fi

OUT="${1:-target/bench_current.json}"

if [ ! -f "$BASELINE" ]; then
  echo "bench_gate: no baseline at $BASELINE — skipping (record one first)" >&2
  exit 0
fi

mkdir -p "$(dirname "$OUT")"

echo "== bench gate: quick ablation run (telemetry armed) =="
GNR_TELEMETRY=1 cargo run -p gnr-bench --release --offline -- \
  --suite ablations --quick --json > "$OUT"

echo "== bench gate: compare against $BASELINE =="
cargo run -p gnr-bench --release --offline -- compare \
  --baseline "$BASELINE" --current "$OUT" --tolerance 0.25
