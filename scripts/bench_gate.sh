#!/usr/bin/env bash
# Perf-regression gate: runs the quick ablation benches with telemetry
# armed and diffs the result against the checked-in baseline.
#
# Policy (implemented by `gnr-bench compare`):
#   - fail (exit 1) on a >25% median timing regression,
#   - warn only on solver iteration-count drift and bench set changes,
#   - skip (exit 0) when the baseline's hardware tag does not match this
#     host — wall-clock numbers from another machine gate nothing.
#
# Usage: scripts/bench_gate.sh [output.json]
#   output.json   where to write the current run's report
#                 (default: target/bench_current.json; CI uploads it)
#
# Refresh the baseline after an intentional perf change with:
#   GNR_TELEMETRY=1 cargo run -p gnr-bench --release --offline -- \
#     --suite ablations --quick --json > results/bench_baseline.json
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=results/bench_baseline.json
OUT="${1:-target/bench_current.json}"

if [ ! -f "$BASELINE" ]; then
  echo "bench_gate: no baseline at $BASELINE — skipping (record one first)" >&2
  exit 0
fi

mkdir -p "$(dirname "$OUT")"

echo "== bench gate: quick ablation run (telemetry armed) =="
GNR_TELEMETRY=1 cargo run -p gnr-bench --release --offline -- \
  --suite ablations --quick --json > "$OUT"

echo "== bench gate: compare against $BASELINE =="
cargo run -p gnr-bench --release --offline -- compare \
  --baseline "$BASELINE" --current "$OUT" --tolerance 0.25
