#!/usr/bin/env bash
# Tiered verification for gnrlab: hermetic build + tests + robustness + lints.
#
# The workspace has zero external crate dependencies, so everything here
# runs with --offline: a network-isolated container must pass this script
# unmodified.
#
# Usage: scripts/verify.sh [--tier N] [--skip-lint]
#   --tier 1     build + full test suite (both thread counts)
#   --tier 2     tier 1 plus the fault-injection suite, scaling ablation,
#                and lints (fmt + clippy -D warnings)
#   --skip-lint  omit the fmt/clippy steps (CI runs them in a dedicated
#                `lint` job, so the verify tiers must not duplicate them)
#   default      all tiers
#
# CI runs `--tier 1` on every push and `--tier 2 --skip-lint` on PRs;
# pre-commit runs default to everything. The bench perf gate lives in
# scripts/bench_gate.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

TIER=all
SKIP_LINT=0
while [ $# -gt 0 ]; do
  case "$1" in
    --tier)
      shift
      TIER="${1:?--tier needs a value}"
      ;;
    --skip-lint)
      SKIP_LINT=1
      ;;
    *)
      echo "usage: scripts/verify.sh [--tier 1|2] [--skip-lint]" >&2
      exit 2
      ;;
  esac
  shift
done
case "$TIER" in
  1|2|all) ;;
  *)
    echo "error: unknown tier '$TIER' (expected 1, 2, or nothing)" >&2
    exit 2
    ;;
esac

echo "== tier-1: cargo build --release (offline) =="
cargo build --release --offline

echo "== tier-1: cargo test -q (offline, whole workspace, GNR_THREADS=1) =="
GNR_THREADS=1 cargo test --workspace -q --offline

echo "== tier-1: cargo test -q (offline, whole workspace, GNR_THREADS=4) =="
GNR_THREADS=4 cargo test --workspace -q --offline

# The workspace pass above already runs these, but they are the named
# gate for the transport acceleration layer (DESIGN.md §11): physics
# goldens, transport invariants on every solver path, and the surface-GF
# cache determinism/fallback contract. sparse_mna (DESIGN.md §12) pins
# the sparse MNA backend against the legacy dense path; mode_space
# (DESIGN.md §15) pins the reduced transform's algebra, fallback
# bit-identity, and pool-size determinism.
echo "== tier-1: acceleration-layer conformance suites (GNR_THREADS=4) =="
GNR_THREADS=4 cargo test -q --offline \
  --test physics_conformance --test transport_invariants --test surface_cache \
  --test sparse_mna --test mode_space

# Budgeted-execution acceptance gate (DESIGN.md §13): cancel / checkpoint /
# resume bit-identity with the §4 pins intact, partial results on budget
# exhaustion, corrupt-checkpoint discard. Named on both pool sizes because
# resume determinism across thread counts is the whole contract.
echo "== tier-1: budget/checkpoint acceptance suite (GNR_THREADS=1 and 4) =="
GNR_THREADS=1 cargo test -q --offline --test budget_checkpoint
GNR_THREADS=4 cargo test -q --offline --test budget_checkpoint

# Characterization-service acceptance gate (DESIGN.md §14): the
# content-addressed table store (byte-identical warm hits, keyed-field
# misses, corrupt-entry eviction with pinned counters) and the job API
# (streaming chunk boundaries, cancel/resume by seed range with the §4
# pins intact, FIFO queue drain). Named on both pool sizes because both
# the cached bytes and the counters must be thread-count invariant.
echo "== tier-1: table-cache / service acceptance suites (GNR_THREADS=1 and 4) =="
GNR_THREADS=1 cargo test -q --offline --test table_cache --test service_jobs
GNR_THREADS=4 cargo test -q --offline --test table_cache --test service_jobs

# Netlist front-end acceptance gate (DESIGN.md §16): the deck-conformance
# suite (committed golden decks reproduce the programmatic builders
# bit-identically across DC / VTC / transient / SNM), the parser
# robustness suite (seeded round-trips, malformed-deck corpus with typed
# errors, scale-suffix goldens), and the circuit zoo (adder truth table,
# SRAM butterfly SNM golden, NAND-tree and clock-chain orderings, the
# deck job through the service API). Named on both pool sizes because the
# bit-identity pins must be thread-count invariant.
echo "== tier-1: netlist conformance / parser / circuit zoo (GNR_THREADS=1 and 4) =="
GNR_THREADS=1 cargo test -q --offline \
  --test netlist_conformance --test netlist_parser --test circuit_zoo
GNR_THREADS=4 cargo test -q --offline \
  --test netlist_conformance --test netlist_parser --test circuit_zoo

if [ "$TIER" = "1" ]; then
  echo "verify: tier-1 checks passed"
  exit 0
fi

echo "== tier-2: fault-injection suite (release) =="
cargo test --release --offline --test fault_tolerance

# Chaos soak: every site in gnr_num::fault::REGISTERED_SITES armed at
# p = 0.3 over the composite workload (SCF, DC rescue chain, transient
# ladder, checkpointed Monte Carlo). Fails on any panic or non-typed
# error; new fault sites join the soak just by registering.
echo "== tier-2: chaos soak over all registered fault sites (release) =="
cargo test --release --offline --test chaos_soak -- --nocapture

echo "== tier-2: par_scaling ablation (serial vs 4-thread table build) =="
cargo run -p gnr-bench --release --offline -- --suite ablations --filter par_scaling --quick

if [ "$SKIP_LINT" = "1" ]; then
  echo "== tier-2: lints skipped (--skip-lint; CI's lint job owns them) =="
else
  echo "== tier-2: cargo fmt --check =="
  cargo fmt --check

  echo "== tier-2: cargo clippy -D warnings (offline) =="
  cargo clippy --workspace --all-targets --offline -- -D warnings
fi

echo "verify: all checks passed"
