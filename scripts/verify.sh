#!/usr/bin/env bash
# Tier-1 verification for gnrlab: hermetic build + full test suite + lints.
#
# The workspace has zero external crate dependencies, so everything here
# runs with --offline: a network-isolated container must pass this script
# unmodified. Usage: scripts/verify.sh  (from the repo root or anywhere).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release (offline) =="
cargo build --release --offline

echo "== tier-1: cargo test -q (offline, whole workspace, GNR_THREADS=1) =="
GNR_THREADS=1 cargo test --workspace -q --offline

echo "== tier-1: cargo test -q (offline, whole workspace, GNR_THREADS=4) =="
GNR_THREADS=4 cargo test --workspace -q --offline

echo "== robustness: fault-injection suite (release) =="
cargo test --release --offline --test fault_tolerance

echo "== scaling: par_scaling ablation (serial vs 4-thread table build) =="
cargo run -p gnr-bench --release --offline -- --suite ablations --filter par_scaling --quick

echo "== lint: cargo fmt --check =="
cargo fmt --check

echo "== lint: cargo clippy -D warnings (offline) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "verify: all checks passed"
