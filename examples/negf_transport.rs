//! The rigorous device path: atomistic NEGF ⇄ 3D-Poisson, end to end.
//!
//! Demonstrates the quantum-transport machinery of the paper's §2 on a
//! reduced-size device: ribbon band structure, ballistic transmission
//! staircase, and a self-consistent Schottky-barrier FET bias point with
//! its conduction-band profile (paper Fig. 5a's machinery).
//!
//! Run with: `cargo run --release --example negf_transport`

use gnrlab::device::{DeviceConfig, ScfOptions, ScfSolver};
use gnrlab::lattice::{AGnr, DeviceHamiltonian};
use gnrlab::negf::{Lead, RgfSolver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- band structure ---
    let gnr = AGnr::new(12)?;
    let bands = gnr.band_structure(96)?;
    println!(
        "N=12 A-GNR: Eg = {:.3} eV, first subband edges: {:?}",
        bands.gap(),
        bands
            .conduction_subband_edges(3)
            .iter()
            .map(|e| format!("{e:.3}"))
            .collect::<Vec<_>>()
    );
    println!(
        "conduction-band effective mass: {:.3} m0",
        bands.conduction_effective_mass()
    );

    // --- ballistic transmission staircase (ideal ribbon leads) ---
    let h = DeviceHamiltonian::flat_band(gnr, 6)?;
    let solver = RgfSolver::new(&h, Lead::gnr_contact(), Lead::gnr_contact());
    println!("\ntransmission through the ideal ribbon (integer mode counts):");
    for i in 0..=10 {
        let e = i as f64 * 0.12;
        let t = solver.transmission(e)?;
        println!("  E = {e:>5.2} eV   T = {t:>6.3}");
    }

    // --- self-consistent SBFET bias point ---
    let mut cfg = DeviceConfig::test_small(9)?;
    cfg.channel_cells = 14;
    let scf = ScfSolver::new(&cfg, ScfOptions::fast());
    println!("\nself-consistent NEGF/Poisson at V_G = 0.45 V, V_D = 0.3 V ...");
    let (result, _report) = scf.solve(&gnrlab::num::par::ExecCtx::from_env(), 0.45, 0.3)?;
    println!(
        "converged in {} iterations (residual {:.1} mV): I_D = {:.3e} A, Q = {:.3e} C",
        result.iterations,
        result.residual_v * 1e3,
        result.current_a,
        result.charge_c
    );
    let half_gap = AGnr::new(9)?.band_structure(96)?.gap() / 2.0;
    println!("conduction band profile E_C(x) along the channel:");
    for (l, u) in result.layer_potential_ev.iter().enumerate() {
        let ec = u + half_gap;
        let bar: String = "=".repeat(((ec + 0.6) * 40.0).max(0.0) as usize);
        println!("  layer {l:>2}: {ec:>7.3} eV  {bar}");
    }
    println!("\nSchottky barriers at both contacts, gate-controlled channel in");
    println!("between: the device the paper simulates, solved from the atoms up.");
    Ok(())
}
