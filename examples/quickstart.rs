//! Quickstart: from an atomistic ribbon to a switching logic gate.
//!
//! Builds the paper's nominal N=12 GNRFET with the fast semi-analytic
//! device path, prints its ambipolar I-V curve, assembles the lookup-table
//! FO4 inverter with the paper's extrinsic parasitics, and reports the
//! delay/power/noise figures of merit.
//!
//! Run with: `cargo run --release --example quickstart`

use gnrlab::device::table::TableGrid;
use gnrlab::device::{DeviceConfig, DeviceTable, Polarity, SbfetModel};
use gnrlab::spice::builders::{ExtrinsicParasitics, InverterCell};
use gnrlab::spice::measure::{butterfly_snm, fo4_metrics_for_cell, inverter_vtc};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The device: a 15 nm N=12 armchair GNR in the paper's double-gate
    //    Schottky-barrier stack. Use the reduced test geometry here so the
    //    example runs in seconds; swap in `paper_nominal` for full scale.
    let cfg = DeviceConfig::test_small(12)?;
    let model = SbfetModel::new(&cfg)?;
    println!(
        "N=12 A-GNR: width {:.2} nm, band gap {:.3} eV, channel {:.1} nm",
        cfg.gnr.width_nm(),
        model.band_gap(),
        cfg.channel_nm()
    );

    // 2. The ambipolar I-V curve (paper Fig. 2a).
    println!("\nI_D(V_G) at V_D = 0.5 V:");
    for i in 0..=10 {
        let vg = i as f64 * 0.075;
        let id = model.drain_current(vg, 0.5)?;
        println!("  V_G = {vg:>5.3} V   I_D = {id:>10.3e} A");
    }
    let vmin = model.minimum_leakage_vg(0.5)?;
    println!("minimum leakage at V_G = {vmin:.3} V (ambipolar: ~V_D/2)");
    // Offset engineering targets the supply the gate will actually run at.
    let vdd = 0.4;
    let vmin_op = model.minimum_leakage_vg(vdd)?;

    // 3. Lookup tables for the 4-ribbon array FET, with the gate metal
    //    work function chosen so minimum leakage sits at V_GS = 0.
    let grid = TableGrid {
        vgs: (-0.35, 1.0),
        vds: (0.0, 0.85),
        points: 21,
    };
    let ctx = gnrlab::num::par::ExecCtx::from_env();
    let n =
        DeviceTable::from_model(&ctx, &model, Polarity::NType, grid, 4)?.with_vg_shift(-vmin_op);
    let p = n.mirrored();

    // 4. A FO4 inverter with the paper's contact parasitics.
    let cell = InverterCell::new(&n, &p, &ExtrinsicParasitics::nominal())?;
    let metrics = fo4_metrics_for_cell(&cell, vdd)?;
    let vtc = inverter_vtc(&cell, vdd, 33)?;
    let snm = butterfly_snm(&vtc, &vtc, vdd).snm();
    println!("\nFO4 inverter at V_DD = {vdd} V:");
    println!("  delay          = {:.2} ps", metrics.delay_s * 1e12);
    println!("  static power   = {:.4} uW", metrics.static_power_w * 1e6);
    println!(
        "  switch energy  = {:.4} fJ",
        metrics.energy_per_cycle_j * 1e15
    );
    println!("  noise margin   = {snm:.3} V");
    println!(
        "  est. 15-stage ring oscillator: {:.2} GHz",
        1.0 / (2.0 * 15.0 * metrics.delay_s) / 1e9
    );
    Ok(())
}
