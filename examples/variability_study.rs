//! Variability and defects: the paper's §4/§5 study in miniature.
//!
//! Measures how GNR-width variation and oxide charge impurities shift the
//! FO4 inverter figures of merit, runs a small ring-oscillator Monte Carlo,
//! and shows the latch butterfly collapse.
//!
//! Run with: `cargo run --release --example variability_study`

use gnrlab::explore::devices::{ArrayScenario, DeviceLibrary, DeviceVariant, Fidelity};
use gnrlab::explore::latch::latch_study;
use gnrlab::explore::monte_carlo::ring_oscillator_monte_carlo;
use gnrlab::explore::variability::{inverter_figures, Metric, VariabilityTable};
use gnrlab::num::par::ExecCtx;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut lib = DeviceLibrary::new(Fidelity::Fast);
    let vdd = 0.4;
    let shift = lib.min_leakage_shift(vdd)?;

    // --- single-variant deltas (a slice of Tables 2 and 3) ---
    let ctx = ExecCtx::from_env();
    let nominal = inverter_figures(
        &ctx,
        &mut lib,
        DeviceVariant::nominal(),
        DeviceVariant::nominal(),
        vdd,
        shift,
        None,
    )?;
    println!(
        "nominal inverter: delay {:.2} ps, static {:.4} uW, SNM {:.3} V",
        nominal.delay_s * 1e12,
        nominal.static_w * 1e6,
        nominal.snm_v
    );
    let cases = [
        (
            "both devices N=9 (narrow)",
            DeviceVariant::width(9, ArrayScenario::AllFour),
        ),
        (
            "both devices N=18 (wide)",
            DeviceVariant::width(18, ArrayScenario::AllFour),
        ),
        (
            "-2q impurity (all ribbons)",
            DeviceVariant::charge(-2.0, ArrayScenario::AllFour),
        ),
        (
            "-2q impurity (1 of 4)",
            DeviceVariant::charge(-2.0, ArrayScenario::OneOfFour),
        ),
    ];
    for (label, v) in cases {
        let m = inverter_figures(&ctx, &mut lib, v, v, vdd, shift, None)?;
        println!(
            "{label:>28}: delay {:+6.1}%  static {:+7.1}%  SNM {:+6.1}%",
            100.0 * (m.delay_s / nominal.delay_s - 1.0),
            100.0 * (m.static_w / nominal.static_w - 1.0),
            100.0 * (m.snm_v / nominal.snm_v - 1.0)
        );
    }

    // --- a 2x2 corner of Table 4 ---
    let axis: Vec<(String, usize, f64)> =
        vec![("N=9,+q".into(), 9, 1.0), ("N=18,-q".into(), 18, -1.0)];
    let table: VariabilityTable =
        gnrlab::explore::variability::variability_table(&ctx, &mut lib, &axis, &axis, vdd)?;
    println!("\ncombined width+impurity corner (Table 4 style):");
    println!("{}", table.render(Metric::Delay));
    println!("{}", table.render(Metric::Snm));

    // --- Monte Carlo ring oscillator (Fig. 6 in miniature) ---
    println!("Monte Carlo (1000 samples, 15-stage ring oscillator) ...");
    let mc = ring_oscillator_monte_carlo(&ctx, &mut lib, vdd, 15, 1000, 42)?;
    if mc.stalled_samples > 0 {
        println!(
            "  {} of 1000 rings stalled (non-functional stage drawn)",
            mc.stalled_samples
        );
    }
    let f = mc.frequency_summary()?;
    let s = mc.static_summary()?;
    println!(
        "frequency: nominal {:.2} GHz -> mean {:.2} GHz ({:+.1}%)",
        mc.nominal_frequency_hz / 1e9,
        f.mean / 1e9,
        100.0 * (f.mean / mc.nominal_frequency_hz - 1.0)
    );
    println!(
        "static power: nominal {:.3} uW -> mean {:.3} uW ({:+.1}%)",
        mc.nominal_static_w * 1e6,
        s.mean * 1e6,
        100.0 * (s.mean / mc.nominal_static_w - 1.0)
    );

    // --- latch butterfly (Fig. 7 in miniature) ---
    let study = latch_study(&ctx, &mut lib, vdd)?;
    println!("\nlatch noise margins:");
    for case in &study.cases {
        println!(
            "  {:<22} SNM = {:.4} V, static = {:.3e} W",
            case.label,
            case.margins.snm(),
            case.static_w
        );
    }
    Ok(())
}
