//! Band-structure gallery: the electronic structure facts the paper's
//! device physics rests on, computed from the tight-binding Hamiltonians.
//!
//! * armchair family behaviour: `3p`/`3p+1` semiconducting with gap ∝ 1/w,
//!   `3p+2` nearly metallic (paper §4);
//! * zigzag ribbons: metallic with flat edge-state bands (paper ref. [12]).
//!
//! Run with: `cargo run --release --example band_structures`

use gnrlab::lattice::{AGnr, ZGnr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("armchair family (gap vs index):");
    println!(
        "{:>5} {:>9} {:>10} {:>10} {:>8}",
        "N", "family", "width(nm)", "gap (eV)", "m*/m0"
    );
    for n in 7..=18 {
        let gnr = AGnr::new(n)?;
        let bands = gnr.band_structure(96)?;
        let family = match n % 3 {
            0 => "3p",
            1 => "3p+1",
            _ => "3p+2",
        };
        println!(
            "{:>5} {:>9} {:>10.2} {:>10.3} {:>8.3}",
            n,
            family,
            gnr.width_nm(),
            bands.gap(),
            bands.conduction_effective_mass()
        );
    }

    println!("\nzigzag ribbons (always metallic, flat edge bands):");
    println!(
        "{:>5} {:>10} {:>10} {:>22}",
        "N", "width(nm)", "gap (eV)", "|E| at k=pi (eV)"
    );
    for n in [4usize, 6, 8, 12] {
        let z = ZGnr::new(n)?;
        let gap = z.gap(64)?;
        let bands = z.band_structure(64)?;
        let m = z.atoms_per_cell();
        let edge = bands[m / 2].last().copied().unwrap_or(f64::NAN).abs();
        println!(
            "{:>5} {:>10.2} {:>10.4} {:>22.2e}",
            n,
            z.width_nm(),
            gap,
            edge
        );
    }

    // ASCII band diagram of the N=12 armchair ribbon near the gap.
    println!("\nN=12 A-GNR bands near the gap (x: k 0..pi, o: conduction, *: valence):");
    let bands = AGnr::new(12)?.band_structure(48)?;
    let interesting: Vec<&Vec<f64>> = bands
        .bands()
        .iter()
        .filter(|b| b.iter().any(|&e| e.abs() < 1.2))
        .collect();
    let rows = 25usize;
    let e_max = 1.2;
    let mut canvas = vec![vec![b' '; 48]; rows];
    for band in &interesting {
        for (ik, &e) in band.iter().enumerate() {
            if e.abs() >= e_max {
                continue;
            }
            let r = ((e_max - e) / (2.0 * e_max) * (rows - 1) as f64).round() as usize;
            canvas[r.min(rows - 1)][ik] = if e > 0.0 { b'o' } else { b'*' };
        }
    }
    for (r, row) in canvas.iter().enumerate() {
        let e = e_max - 2.0 * e_max * r as f64 / (rows - 1) as f64;
        println!("{e:>6.2} |{}", std::str::from_utf8(row)?);
    }
    println!("        {}", "-".repeat(48));
    println!("        k = 0{:>42}", "k = pi");
    Ok(())
}
