//! Technology exploration: the (V_DD, V_T) design space of a GNRFET ring
//! oscillator (the paper's §3.1 methodology on a reduced grid).
//!
//! Maps EDP, frequency, and SNM over supply and threshold voltage, then
//! picks the paper's operating points: A (performance only), B
//! (performance + noise robustness), and C (the equal-EDP trap at high
//! V_T).
//!
//! Run with: `cargo run --release --example design_space`

use gnrlab::explore::devices::Fidelity;
use gnrlab::explore::service::{CharacterizationService, JobRequest};
use gnrlab::num::par::ExecCtx;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The service's in-memory content-addressed table store deduplicates
    // device builds across the whole grid even with no disk cache: every
    // (geometry, bias grid, solver options) table is solved once and
    // every later request is a byte-identical cache hit.
    let mut service = CharacterizationService::new(ExecCtx::from_env(), Fidelity::Fast);
    let vdd_axis: Vec<f64> = (0..6).map(|i| 0.2 + i as f64 * 0.08).collect();
    let vt_axis: Vec<f64> = (0..5).map(|i| 0.03 + i as f64 * 0.05).collect();
    println!(
        "exploring a {}x{} (V_DD, V_T) grid ...",
        vdd_axis.len(),
        vt_axis.len()
    );
    let response = service.submit(JobRequest::edp_contour(vdd_axis, vt_axis, 15))?;
    let map = response.contour().expect("contour jobs return a map");

    println!(
        "\n{}",
        map.render(|p| p.frequency_hz / 1e9, "ring-oscillator frequency (GHz)")
    );
    println!("{}", map.render(|p| p.edp_js * 1e30, "EDP (aJ-ps)"));
    println!("{}", map.render(|p| p.snm_v * 1e3, "inverter SNM (mV)"));

    let f_target = 3e9;
    let best_snm = map.feasible().map(|p| p.snm_v).fold(0.0, f64::max);
    if let Some(a) = map.point_min_edp(f_target) {
        println!(
            "A: min EDP @ >=3 GHz           -> V_DD={:.2}, V_T={:.2}: {:.2} GHz, {:.1} aJ-ps, SNM {:.0} mV",
            a.vdd, a.vt, a.frequency_hz / 1e9, a.edp_js * 1e30, a.snm_v * 1e3
        );
        if let Some(b) = map.point_min_edp_with_snm(f_target, 0.6 * best_snm) {
            println!(
                "B: + SNM floor ({:.0} mV)       -> V_DD={:.2}, V_T={:.2}: {:.2} GHz, {:.1} aJ-ps, SNM {:.0} mV",
                0.6 * best_snm * 1e3, b.vdd, b.vt, b.frequency_hz / 1e9, b.edp_js * 1e30, b.snm_v * 1e3
            );
            if let Some(c) = map.point_same_edp_higher_vt(&b, 0.3) {
                println!(
                    "C: same EDP/SNM, higher V_T    -> V_DD={:.2}, V_T={:.2}: {:.2} GHz ({:+.0}% vs B)",
                    c.vdd,
                    c.vt,
                    c.frequency_hz / 1e9,
                    100.0 * (c.frequency_hz / b.frequency_hz - 1.0)
                );
            }
        }
    }
    if let Some(hits) = response.telemetry.counter("table_cache.hits") {
        println!(
            "\ntable cache: {hits} intra-run hits, {} misses (GNR_TELEMETRY=1)",
            response
                .telemetry
                .counter("table_cache.misses")
                .unwrap_or(0)
        );
    }
    println!("\nthe paper's conclusion: unlike CMOS, raising V_T does not buy noise");
    println!("robustness in GNRFET circuits — the SBFET potential-divider effect");
    println!("costs frequency instead.");
    Ok(())
}
